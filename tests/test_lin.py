"""Linearizability checker tests: unit cases, a brute-force oracle
property, and corpus histories."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import corpus
from repro.interp import Interp, ThreadSpec, run_random
from repro.lin import (CounterSpec, FifoQueueSpec, HerlihyObjectSpec, Op,
                       RegisterSpec, SemaphoreSpec, StackSpec,
                       linearizable, linearizable_bruteforce,
                       world_history)


def op(i, tid, proc, args, result, inv, ret):
    return Op(i, tid, proc, tuple(args), result, inv, ret)


# -- unit cases -----------------------------------------------------------------------

def test_empty_history_linearizable():
    assert linearizable([], FifoQueueSpec()).ok


def test_sequential_queue_history():
    ops = [
        op(0, 0, "Enq", [1], None, 0, 1),
        op(1, 0, "Deq", [], 1, 2, 3),
    ]
    assert linearizable(ops, FifoQueueSpec()).ok


def test_wrong_dequeue_value_rejected():
    ops = [
        op(0, 0, "Enq", [1], None, 0, 1),
        op(1, 0, "Deq", [], 2, 2, 3),
    ]
    assert not linearizable(ops, FifoQueueSpec()).ok


def test_real_time_order_enforced():
    # Deq returns empty AFTER an Enq completed and nothing dequeued it
    ops = [
        op(0, 0, "Enq", [1], None, 0, 1),
        op(1, 1, "Deq", [], -1, 2, 3),
        op(2, 0, "Deq", [], 1, 4, 5),
    ]
    assert not linearizable(ops, FifoQueueSpec()).ok


def test_concurrent_deq_may_return_empty():
    # the Deq overlaps the Enq, so EMPTY is a legal linearization
    ops = [
        op(0, 0, "Enq", [1], None, 0, 3),
        op(1, 1, "Deq", [], -1, 1, 2),
        op(2, 0, "Deq", [], 1, 4, 5),
    ]
    assert linearizable(ops, FifoQueueSpec()).ok


def test_pending_op_may_take_effect():
    ops = [
        op(0, 0, "Enq", [7], None, 0, None),  # pending forever
        op(1, 1, "Deq", [], 7, 1, 2),
    ]
    assert linearizable(ops, FifoQueueSpec()).ok


def test_pending_op_may_be_dropped():
    ops = [
        op(0, 0, "Enq", [7], None, 0, None),
        op(1, 1, "Deq", [], -1, 1, 2),
    ]
    assert linearizable(ops, FifoQueueSpec()).ok


def test_fifo_order_violation_rejected():
    ops = [
        op(0, 0, "Enq", [1], None, 0, 1),
        op(1, 0, "Enq", [2], None, 2, 3),
        op(2, 1, "Deq", [], 2, 4, 5),
        op(3, 1, "Deq", [], 1, 6, 7),
    ]
    assert not linearizable(ops, FifoQueueSpec()).ok


def test_stack_spec_lifo():
    ops = [
        op(0, 0, "Push", [1], None, 0, 1),
        op(1, 0, "Push", [2], None, 2, 3),
        op(2, 0, "Pop", [], 2, 4, 5),
    ]
    assert linearizable(ops, StackSpec()).ok
    ops[2] = op(2, 0, "Pop", [], 1, 4, 5)
    assert not linearizable(ops, StackSpec()).ok


def test_counter_spec():
    ops = [
        op(0, 0, "Inc", [], None, 0, 1),
        op(1, 1, "Get", [], 1, 2, 3),
    ]
    assert linearizable(ops, CounterSpec()).ok
    ops[1] = op(1, 1, "Get", [], 0, 2, 3)
    assert not linearizable(ops, CounterSpec()).ok


def test_register_spec():
    ops = [
        op(0, 0, "Write", [5], None, 0, 1),
        op(1, 1, "Read", [], 5, 2, 3),
    ]
    assert linearizable(ops, RegisterSpec()).ok


def test_semaphore_blocking_down_stays_pending():
    spec = SemaphoreSpec(initial_value=1)
    ops = [
        op(0, 0, "Down", [], None, 0, 1),
        op(1, 1, "Down", [], None, 2, None),  # blocked forever: pending
    ]
    assert linearizable(ops, spec).ok


def test_semaphore_overdraw_rejected():
    spec = SemaphoreSpec(initial_value=1)
    ops = [
        op(0, 0, "Down", [], None, 0, 1),
        op(1, 1, "Down", [], None, 2, 3),  # completed: impossible
    ]
    assert not linearizable(ops, spec).ok


def test_witness_is_a_legal_order():
    ops = [
        op(0, 0, "Enq", [1], None, 0, 5),
        op(1, 1, "Deq", [], 1, 2, 3),
    ]
    result = linearizable(ops, FifoQueueSpec())
    assert result.ok
    assert [o.proc for o in result.witness] == ["Enq", "Deq"]


# -- oracle property --------------------------------------------------------------------

@st.composite
def _histories(draw):
    n = draw(st.integers(1, 5))
    events = []
    ops = []
    time = 0
    for i in range(n):
        tid = draw(st.integers(0, 1))
        kind = draw(st.sampled_from(["enq", "deq"]))
        inv = time
        time += 1
        pending = draw(st.booleans()) and i == n - 1
        ret = None if pending else time
        time += 0 if pending else 1
        if kind == "enq":
            ops.append(op(i, tid, "Enq", [draw(st.integers(1, 3))],
                          None, inv, ret))
        else:
            result = draw(st.sampled_from([-1, 1, 2, 3]))
            ops.append(op(i, tid, "Deq", [],
                          None if pending else result, inv, ret))
    return ops


@given(_histories())
@settings(max_examples=150, deadline=None)
def test_checker_matches_bruteforce_oracle(ops):
    spec = FifoQueueSpec()
    assert linearizable(ops, spec).ok == linearizable_bruteforce(ops, spec)


# -- corpus histories --------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(10))
def test_nfq_histories_linearizable(seed):
    interp = Interp(corpus.NFQ)
    world = interp.make_world([
        ThreadSpec.of(("Enq", 1), ("Deq",)),
        ThreadSpec.of(("Enq", 2), ("Deq",), ("Deq",)),
    ])
    run_random(interp, world, seed=seed)
    assert linearizable(world_history(world), FifoQueueSpec()).ok


@pytest.mark.parametrize("seed", range(10))
def test_nfq_prime_histories_linearizable(seed):
    interp = Interp(corpus.NFQ_PRIME)
    world = interp.make_world([
        ThreadSpec.of(("AddNode", 1), ("AddNode", 2)),
        ThreadSpec.of(("DeqP",), ("DeqP",), ("DeqP",)),
        ThreadSpec.of(("UpdateTail",), repeat=True),
    ])
    run_random(interp, world, seed=seed, max_steps=20_000)
    assert linearizable(world_history(world), FifoQueueSpec()).ok


@pytest.mark.parametrize("seed", range(10))
def test_treiber_histories_linearizable(seed):
    interp = Interp(corpus.TREIBER_STACK)
    world = interp.make_world([
        ThreadSpec.of(("Push", 1), ("Pop",)),
        ThreadSpec.of(("Push", 2), ("Pop",), ("Pop",)),
    ])
    run_random(interp, world, seed=seed)
    assert linearizable(world_history(world), StackSpec()).ok


@pytest.mark.parametrize("seed", range(10))
def test_herlihy_histories_linearizable(seed):
    interp = Interp(corpus.HERLIHY_SMALL)
    world = interp.make_world([
        ThreadSpec.of(("Apply", 3), ("ReadValue",)),
        ThreadSpec.of(("Apply", 5), ("ReadValue",)),
    ])
    run_random(interp, world, seed=seed)
    assert linearizable(world_history(world), HerlihyObjectSpec()).ok


@pytest.mark.parametrize("seed", range(10))
def test_cas_counter_histories_linearizable(seed):
    interp = Interp(corpus.CAS_COUNTER)
    world = interp.make_world([
        ThreadSpec.of(("Inc",), ("Get",)),
        ThreadSpec.of(("Inc",), ("Get",)),
    ])
    run_random(interp, world, seed=seed)
    assert linearizable(world_history(world), CounterSpec()).ok


def test_buggy_queue_produces_non_linearizable_history():
    interp = Interp(corpus.NFQ_PRIME_BUGGY)
    bad = 0
    for seed in range(30):
        world = interp.make_world([
            ThreadSpec.of(("AddNode", 1),),
            ThreadSpec.of(("AddNode", 2),),
            ThreadSpec.of(("UpdateTail",), ("UpdateTail",)),
            ThreadSpec.of(("DeqP",), ("DeqP",), ("DeqP",)),
        ])
        run_random(interp, world, seed=seed, max_steps=5000)
        if not linearizable(world_history(world), FifoQueueSpec()).ok:
            bad += 1
    assert bad > 0
