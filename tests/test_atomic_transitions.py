"""Unit tests for the atomic-transition machinery (mc/atomic.py) and a
property test: full vs atomic exploration agree on quiescent states for
randomly drawn thread-spec mixes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import corpus
from repro.analysis import analyze_program
from repro.interp import Interp, ThreadSpec
from repro.mc import Explorer, run_to_commit, run_variant

SOURCE = """
global G;
init { G = 0; }
proc Inc() {
  loop {
    local t = LL(G) in {
      if (SC(G, t + 1)) { return t + 1; }
    }
  }
}
proc WaitFor(v) {
  loop {
    local t = LL(G) in {
      if (t == v) { return 1; }
    }
  }
}
proc Crash() { assert(G < 100); G = G + 1; }
"""


def _interp():
    return Interp(SOURCE)


def test_run_to_commit_completes_and_returns_events():
    interp = _interp()
    world = interp.make_world([ThreadSpec.of(("Inc",))])
    outcome = run_to_commit(interp, world, 0)
    assert outcome.world is not None
    assert outcome.world.globals["G"] == 1
    kinds = [e.kind for e in outcome.events]
    assert kinds == ["invoke", "return"]
    assert outcome.events[-1].result == 1
    # the source world is untouched
    assert world.globals["G"] == 0


def test_run_to_commit_detects_spinning_as_disabled():
    interp = _interp()
    world = interp.make_world([ThreadSpec.of(("WaitFor", 5))])
    outcome = run_to_commit(interp, world, 0)
    assert outcome.world is None  # spins: G never becomes 5


def test_run_to_commit_enabled_once_condition_holds():
    interp = _interp()
    world = interp.make_world([ThreadSpec.of(("WaitFor", 0))])
    outcome = run_to_commit(interp, world, 0)
    assert outcome.world is not None


def test_run_to_commit_surfaces_assertion_violation():
    interp = _interp()
    world = interp.make_world([ThreadSpec.of(("Crash",))])
    world.globals["G"] = 100
    outcome = run_to_commit(interp, world, 0)
    assert outcome.violation is not None
    assert outcome.world is None


def test_run_variant_executes_specific_variant():
    analysis = analyze_program(corpus.NFQ_PRIME)
    variant_interp = Interp(analysis.variant_set.program)
    interp = Interp(corpus.NFQ_PRIME)
    world = interp.make_world([ThreadSpec.of(("DeqP",))])
    # on the empty queue only the EMPTY-returning variant is enabled
    empty = run_variant(interp, variant_interp, world, 0, "DeqP1")
    value = run_variant(interp, variant_interp, world, 0, "DeqP2")
    assert empty.world is not None
    assert empty.events[-1].result == -1
    assert empty.events[-1].proc == "DeqP"  # display name, not DeqP1
    assert value.world is None              # TRUE(next != null) fails


def test_run_variant_respects_assumptions_after_state_change():
    analysis = analyze_program(corpus.NFQ_PRIME)
    variant_interp = Interp(analysis.variant_set.program)
    interp = Interp(corpus.NFQ_PRIME)
    world = interp.make_world([
        ThreadSpec.of(("AddNode", 9)), ThreadSpec.of(("DeqP",))])
    added = run_to_commit(interp, world, 0)
    assert added.world is not None
    # Tail lags after an AddNode: DeqP2 requires h != Tail, which holds
    # only after UpdateTail helps — so the variant is disabled here
    value = run_variant(interp, variant_interp, added.world, 1, "DeqP2")
    assert value.world is None


# -- property: reduction soundness over random spec mixes ------------------------------

_ops = st.lists(
    st.sampled_from([("Inc",), ("WaitFor", 1), ("WaitFor", 2)]),
    min_size=1, max_size=2)


@given(st.lists(_ops, min_size=1, max_size=3))
@settings(max_examples=25, deadline=None)
def test_full_and_atomic_agree_on_quiescent_states(spec_lists):
    specs = [ThreadSpec.of(*ops) for ops in spec_lists]
    interp = _interp()
    full = Explorer(interp, specs, mode="full", max_states=50_000,
                    collect_quiescent=True).run()
    atomic = Explorer(interp, specs, mode="atomic", max_states=50_000,
                      collect_quiescent=True).run()
    assert not full.capped
    assert atomic.quiescent == full.quiescent


@given(st.lists(_ops, min_size=1, max_size=3))
@settings(max_examples=15, deadline=None)
def test_full_and_por_agree_on_quiescent_states(spec_lists):
    specs = [ThreadSpec.of(*ops) for ops in spec_lists]
    interp = _interp()
    full = Explorer(interp, specs, mode="full", max_states=50_000,
                    collect_quiescent=True).run()
    por = Explorer(interp, specs, mode="por", max_states=50_000,
                   collect_quiescent=True).run()
    assert por.quiescent == full.quiescent
