"""Lint <-> analysis <-> model-checker cross-validation
(docs/LINT.md, ``repro experiments crossval``).

Two directions, both load-bearing:

* every seeded defect is flagged by lint with the advertised rule ids
  *and* has a model-checker-reachable assertion violation;
* lint-clean programs the analysis proves atomic have no violation,
  and the full exploration reaches exactly the quiescent states of
  the atomic-mode exploration (the reductions are exact).

Plus the taint plumbing: lint errors downgrade Thm 5.3/5.4 inside the
inference, the downgrades survive into the JSON export, and the
counterexample timeline cites them in its footer.
"""

import pytest

from repro import corpus
from repro.analysis import analyze_program
from repro.experiments import crossval
from repro.interp import Interp, ThreadSpec
from repro.mc import Explorer
from repro.mc.cex import build_cex
from repro.obs.export import ANALYSIS_SCHEMA, analysis_to_dict, validate


@pytest.fixture(scope="module")
def table():
    return {c.name: c for c in crossval.run().cases}


def test_every_case_is_consistent(table):
    for case in table.values():
        assert case.as_expected, case


def test_aba_stack_defect_pair(table):
    case = table["ABA_STACK"]
    assert "aba.unversioned-cas" in case.lint_rules
    assert case.violation == "assertion failed"
    assert case.atomic_procs == []


def test_aba_fix_silences_both_lint_and_mc(table):
    case = table["ABA_STACK_FIXED"]
    assert not any(r.startswith("aba.") for r in case.lint_rules)
    assert case.violation == ""
    # the unguarded payload writes remain real races
    assert case.lint_rules == ["race.unlocked"]


def test_double_ll_defect_pair(table):
    case = table["DOUBLE_LL_DOWN"]
    assert set(case.lint_rules) == {"llsc.multi-ll", "llsc.nested-ll"}
    assert case.violation == "assertion failed"


@pytest.mark.parametrize("name", ["SEMAPHORE", "CAS_COUNTER",
                                  "TREIBER_STACK", "VERSIONED_CELL"])
def test_clean_atomic_programs_have_exact_reductions(table, name):
    case = table[name]
    assert case.lint_errors == 0
    assert case.atomic_procs          # the analysis proves something
    assert case.violation == ""
    assert case.quiescent_match is True


# -- lint-driven theorem downgrades -------------------------------------------

@pytest.fixture(scope="module")
def double_ll_analysis():
    return analyze_program(corpus.DOUBLE_LL_DOWN)


def test_downgrades_recorded_on_analysis_result(double_ll_analysis):
    (d,) = double_ll_analysis.downgrades
    assert d["theorem"] == "5.3"
    assert d["region"] == "Sem"
    assert set(d["rules"]) == {"llsc.multi-ll", "llsc.nested-ll"}


def test_aba_downgrade_targets_thm_54():
    analysis = analyze_program(corpus.ABA_STACK)
    assert any(d["theorem"] == "5.4" and d["region"] == "Top"
               for d in analysis.downgrades)


def test_fixed_program_has_no_aba_downgrade():
    analysis = analyze_program(corpus.ABA_STACK_FIXED)
    assert not any(d["theorem"] == "5.4" for d in analysis.downgrades)


def test_downgrades_and_lint_survive_json_export(double_ll_analysis):
    doc = analysis_to_dict(double_ll_analysis)
    assert validate(doc, ANALYSIS_SCHEMA) == []
    assert doc["lint"]["summary"]["errors"] == 2
    assert doc["downgrades"][0]["theorem"] == "5.3"


def test_lint_can_be_disabled():
    from repro.analysis.inference import InferenceOptions

    analysis = analyze_program(
        corpus.DOUBLE_LL_DOWN, InferenceOptions(enable_lint=False))
    assert analysis.lint is None
    assert analysis.downgrades == []


def test_cex_footer_cites_downgrades(double_ll_analysis):
    program = double_ll_analysis.program
    interp = Interp(program)
    specs = [ThreadSpec.of(("DownCond",)),
             ThreadSpec.of(("DownCond",), ("DownCond",))]
    result = Explorer(interp, specs, mode="full",
                      max_states=200_000).run()
    assert result.violation == "assertion failed"
    cex = build_cex(result, interp, double_ll_analysis)
    assert cex.downgrades
    text = cex.render()
    assert "lint downgrades in effect during analysis:" in text
    assert "Thm 5.3 on Sem (llsc.multi-ll, llsc.nested-ll)" in text
    assert cex.to_dict()["downgrades"] == cex.downgrades
