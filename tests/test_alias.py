"""Unit coverage for the §5.4 step-4 alias analysis on syntactic
targets: may/must/same-region across every target-kind pairing."""

from repro.analysis.actions import Target
from repro.analysis.alias import AliasAnalysis
from repro.analysis.typing import infer_classes
from repro.synl.resolve import load_program


def _alias(source):
    prog = load_program(source)
    return AliasAnalysis(prog, infer_classes(prog))


TWO_CLASSES = """
class P { F; G; }
class Q { F; }
global A;
global B;
init { A = new P; B = new Q; }
proc UseP() {
  local x = A in
  local w = A in { x.F = 1; w.F = 2; x.G = 3; }
}
proc UseQ() { local y = B in { y.F = 3; } }
"""


def test_globals_alias_iff_same_name():
    aa = _alias(TWO_CLASSES)
    a = Target("global", name="A")
    assert aa.may_alias(a, Target("global", name="A"))
    assert aa.must_alias(a, Target("global", name="A"))
    assert not aa.may_alias(a, Target("global", name="B"))
    assert not aa.must_alias(a, Target("global", name="B"))


def test_global_never_aliases_field_or_var():
    aa = _alias(TWO_CLASSES)
    g = Target("global", name="A")
    f = Target("field", name="x", binding=7, field="F")
    v = Target("var", name="x", binding=7)
    assert not aa.may_alias(g, f)
    assert not aa.may_alias(f, g)
    assert not aa.may_alias(g, v)
    assert not aa.must_alias(g, f)


def test_vars_alias_by_binding_not_name():
    aa = _alias(TWO_CLASSES)
    assert aa.may_alias(Target("var", name="x", binding=3),
                        Target("var", name="y", binding=3))
    assert not aa.may_alias(Target("var", name="x", binding=3),
                            Target("var", name="x", binding=4))


def test_fields_alias_only_on_same_field_name():
    aa = _alias(TWO_CLASSES)
    f1 = Target("field", name="x", binding=None, field="F")
    g1 = Target("field", name="x", binding=None, field="G")
    assert not aa.may_alias(f1, g1)


def test_field_alias_requires_class_overlap():
    aa = _alias(TWO_CLASSES)
    # bindings: find the locals' binding ids through the env
    bx, bw = sorted(b for b in range(0, 64)
                    if aa.env.of_binding(b) == frozenset({"P"}))
    by = next(b for b in range(0, 64)
              if aa.env.of_binding(b) == frozenset({"Q"}))
    xf = Target("field", name="x", binding=bx, field="F")
    yf = Target("field", name="y", binding=by, field="F")
    # same field name, disjoint base classes: no alias
    assert not aa.may_alias(xf, yf)
    # same class set, same field: may alias (but not must — different
    # bindings)
    wf = Target("field", name="w", binding=bw, field="F")
    assert aa.may_alias(xf, wf)
    assert not aa.must_alias(xf, wf)
    assert aa.must_alias(xf, Target("field", name="x", binding=bx,
                                    field="F"))


def test_unknown_base_classes_are_conservative():
    aa = _alias(TWO_CLASSES)
    # binding 999 never appears: the class set is empty, so may_alias
    # must answer True (conservative) for matching field names
    unknown = Target("field", name="z", binding=999, field="F")
    known = Target("field", name="x", binding=0, field="F")
    assert aa.may_alias(unknown, known)


def test_field_never_aliases_element():
    aa = _alias(TWO_CLASSES)
    f = Target("field", name="x", binding=1, field="F")
    e = Target("elem", name="x", binding=1, field="F")
    assert not aa.may_alias(f, e)
    assert not aa.must_alias(f, e)


def test_same_region_is_may_alias():
    aa = _alias(TWO_CLASSES)
    a = Target("global", name="A")
    b = Target("global", name="B")
    assert aa.same_region(a, a)
    assert not aa.same_region(a, b)
