"""Interpreter unit tests: evaluation, LL/SC/VL semantics, CAS with and
without the modification-counter discipline, monitors."""

import pytest

from repro.errors import AssertionViolation, InterpError
from repro.interp import Interp, ThreadSpec, run_round_robin
from repro.interp.values import Ref


def _run_single(source, calls, primitives=None, seed_world=None):
    interp = Interp(source, primitives=primitives)
    world = interp.make_world([ThreadSpec.of(*calls)])
    run_round_robin(interp, world)
    returns = [e for e in world.history if e.kind == "return"]
    return world, [e.result for e in returns]


def test_arithmetic_and_comparison():
    _, results = _run_single("""
        proc P() { return (2 + 3) * 4 - 6 / 2; }
        proc Q() { return 7 % 3; }
        proc R() { return 3 < 4 && 4 <= 4; }
    """, [("P",), ("Q",), ("R",)])
    assert results == [17, 1, True]


def test_short_circuit_evaluation():
    # `x != null && x.fd == 1` must not dereference null
    _, results = _run_single("""
        class C { fd; }
        proc P() {
          local x = null in {
            if (x != null && x.fd == 1) { return 1; }
            return 0;
          }
        }
    """, [("P",)])
    assert results == [0]


def test_object_fields_default_to_null():
    _, results = _run_single("""
        class C { fd; }
        proc P() {
          local c = new C in { return c.fd == null; }
        }
    """, [("P",)])
    assert results == [True]


def test_array_cells_default_to_zero_and_bounds_checked():
    _, results = _run_single("""
        proc P() {
          local a = new int[3] in {
            a[1] = 7;
            return a[0] + a[1];
          }
        }
    """, [("P",)])
    assert results == [7]
    with pytest.raises(InterpError, match="bounds"):
        _run_single("proc P() { local a = new int[2] in { a[5] = 1; } }",
                    [("P",)])


def test_while_loop_executes():
    _, results = _run_single("""
        proc P() {
          local i = 0 in
          local acc = 0 in {
            while (i < 5) { acc = acc + i; i = i + 1; }
            return acc;
          }
        }
    """, [("P",)])
    assert results == [10]


def test_assert_violation_raised():
    with pytest.raises(AssertionViolation):
        _run_single("proc P() { assert(1 == 2); }", [("P",)])


def test_custom_primitive():
    _, results = _run_single(
        "proc P() { return triple(4); }", [("P",)],
        primitives={"triple": lambda v: v * 3})
    assert results == [12]


# -- LL/SC/VL axioms ---------------------------------------------------------------

SHARED = "global G; init { G = 0; }"


def _two_threads(source, spec_a, spec_b):
    interp = Interp(source)
    world = interp.make_world([spec_a, spec_b])
    return interp, world


def _drive(interp, world, schedule):
    """Run threads in an explicit interleaving: a list of tids."""
    for tid in schedule:
        interp.step(world, tid)


def test_sc_succeeds_with_intact_reservation():
    interp, world = _two_threads(
        SHARED + "proc P() { local t = LL(G) in { return SC(G, t+1); } }",
        ThreadSpec.of(("P",)), ThreadSpec.of())
    run_round_robin(interp, world)
    assert world.globals["G"] == 1
    assert world.history[-1].result is True


def test_sc_without_matching_ll_fails():
    interp, world = _two_threads(
        SHARED + "proc P() { return SC(G, 9); }",
        ThreadSpec.of(("P",)), ThreadSpec.of())
    run_round_robin(interp, world)
    assert world.history[-1].result is False
    assert world.globals["G"] == 0


def test_other_threads_store_invalidates_reservation():
    source = SHARED + """
        proc Reader() {
          local t = LL(G) in
          local unused = 0 in {
            return SC(G, t + 1);
          }
        }
        proc Writer() { G = 5; }
    """
    interp, world = _two_threads(source, ThreadSpec.of(("Reader",)),
                                 ThreadSpec.of(("Writer",)))
    # t0: invoke+LL; t1: invoke+store; t0: bind + SC
    _drive(interp, world, [0, 0, 1, 1, 0, 0])
    assert world.history[-1].result is False
    assert world.globals["G"] == 5


def test_own_store_does_not_invalidate_own_reservation():
    source = SHARED + """
        proc P() {
          local t = LL(G) in {
            G = 3;
            return SC(G, t + 1);
          }
        }
    """
    interp, world = _two_threads(source, ThreadSpec.of(("P",)),
                                 ThreadSpec.of())
    run_round_robin(interp, world)
    # per §3.1 only *other* threads' writes invalidate
    assert world.history[-1].result is True
    assert world.globals["G"] == 1


def test_vl_true_until_interference():
    source = SHARED + """
        proc P() {
          local t = LL(G) in
          local first = VL(G) in
          local pause = 0 in {
            return first == VL(G);
          }
        }
        proc W() { G = 7; }
    """
    interp, world = _two_threads(source, ThreadSpec.of(("P",)),
                                 ThreadSpec.of(("W",)))
    # interleave the write between the two VLs
    _drive(interp, world, [0, 0, 0, 1, 1, 0, 0])
    assert world.history[-1].result is False  # first True, second False


def test_ll_refreshes_reservation():
    source = SHARED + """
        proc P() {
          local a = LL(G) in
          local b = LL(G) in {
            return SC(G, b + 1);
          }
        }
        proc W() { G = 9; }
    """
    interp, world = _two_threads(source, ThreadSpec.of(("P",)),
                                 ThreadSpec.of(("W",)))
    # write lands between the two LLs: the second LL re-validates
    _drive(interp, world, [0, 0, 1, 1, 0, 0])
    assert world.history[-1].result is True
    assert world.globals["G"] == 10


# -- CAS and the ABA problem --------------------------------------------------------------

def test_plain_cas_value_semantics():
    _, results = _run_single(
        SHARED + "proc P() { return CAS(G, 0, 5); }", [("P",)])
    assert results == [True]
    _, results = _run_single(
        SHARED + "proc P() { return CAS(G, 3, 5); }", [("P",)])
    assert results == [False]


ABA_BODY = """
    proc Victim() {
      local c = G in
      local pause = 0 in {
        return CAS(G, c, 100);
      }
    }
    proc Meddler() {
      G = 1;
      G = 0;
    }
"""


def test_unversioned_cas_suffers_aba():
    interp, world = _two_threads("global G; init { G = 0; }" + ABA_BODY,
                                 ThreadSpec.of(("Victim",)),
                                 ThreadSpec.of(("Meddler",)))
    # victim reads 0; meddler flips 0 -> 1 -> 0; victim's CAS succeeds
    _drive(interp, world, [0, 0, 1, 1, 1, 0, 0])
    assert world.history[-1].result is True  # the ABA hazard


def test_versioned_cas_defeats_aba():
    interp, world = _two_threads(
        "global versioned G; init { G = 0; }" + ABA_BODY,
        ThreadSpec.of(("Victim",)), ThreadSpec.of(("Meddler",)))
    _drive(interp, world, [0, 0, 1, 1, 1, 0, 0])
    assert world.history[-1].result is False  # counter moved: §5.2 defence


# -- monitors -------------------------------------------------------------------------------

LOCKED = """
    class LockObj { unused; }
    global Lk; global V;
    init { Lk = new LockObj; V = 0; }
    proc P() {
      synchronized (Lk) {
        synchronized (Lk) { V = V + 1; }
      }
    }
"""


def test_reentrant_lock():
    interp, world = _two_threads(LOCKED, ThreadSpec.of(("P",)),
                                 ThreadSpec.of(("P",)))
    run_round_robin(interp, world)
    assert world.globals["V"] == 2
    assert world.locks == {}


def test_contended_acquire_disabled():
    interp, world = _two_threads(LOCKED, ThreadSpec.of(("P",)),
                                 ThreadSpec.of(("P",)))
    # advance t0 past its first acquire
    _drive(interp, world, [0, 0])
    # t1 up to (but not into) its acquire
    interp.step(world, 1)
    assert interp.enabled(world, 0)
    assert not interp.enabled(world, 1)


def test_world_copy_is_independent():
    interp, world = _two_threads(
        SHARED + "proc P() { G = G + 1; }",
        ThreadSpec.of(("P",)), ThreadSpec.of())
    snapshot = world.copy()
    run_round_robin(interp, world)
    assert world.globals["G"] == 1
    assert snapshot.globals["G"] == 0
    run_round_robin(interp, snapshot)
    assert snapshot.globals["G"] == 1


def test_quiescent_predicate():
    interp, world = _two_threads(
        SHARED + "proc P() { G = 1; }",
        ThreadSpec.of(("P",)), ThreadSpec.of())
    assert world.quiescent()
    interp.step(world, 0)
    assert not world.quiescent()
    run_round_robin(interp, world)
    assert world.quiescent()
