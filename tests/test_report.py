"""The unified HTML report: shape-based input classification, the
self-contained renderer, check_html / --self-check, and the `repro
report` CLI path.  Structural validation uses the stdlib HTML parser —
the artifact must stay parseable, complete, and free of external
assets."""

from __future__ import annotations

import json
from html.parser import HTMLParser

import pytest

from repro import cli
from repro.obs.report_html import (SECTIONS, SELF_CHECK_FIXTURE,
                                   ReportInputs, check_html, classify,
                                   collect_inputs, fixture_inputs,
                                   render_report, self_check)

_VOID = {"meta", "br", "hr", "img", "input", "link", "rect", "line",
         "circle", "path", "polyline"}


class _Auditor(HTMLParser):
    """Collects ids/tags and verifies open/close nesting."""

    def __init__(self):
        super().__init__()
        self.ids: set[str] = set()
        self.stack: list[str] = []
        self.svg_count = 0
        self.errors: list[str] = []

    def handle_starttag(self, tag, attrs):
        for key, value in attrs:
            if key == "id":
                self.ids.add(value)
        if tag == "svg":
            self.svg_count += 1
        if tag not in _VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in _VOID:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"unbalanced </{tag}> at {self.getpos()}")
        else:
            self.stack.pop()


def _audit(html_text: str) -> _Auditor:
    auditor = _Auditor()
    auditor.feed(html_text)
    auditor.close()
    return auditor


# -- renderer ----------------------------------------------------------------------

def test_fixture_report_is_complete_and_well_formed():
    html_text = render_report(fixture_inputs(), title="t")
    auditor = _audit(html_text)
    assert auditor.errors == []
    assert auditor.stack == []  # everything opened was closed
    assert {f"sec-{name}" for name in SECTIONS} <= auditor.ids
    assert auditor.svg_count >= 4
    assert check_html(html_text) == []


def test_empty_inputs_render_placeholders_not_dropped_sections():
    html_text = render_report(ReportInputs())
    assert check_html(html_text) == []
    assert "class='empty'" in html_text


def test_check_html_flags_missing_sections_and_external_assets():
    full = render_report(fixture_inputs())
    truncated = full[: full.index("id='sec-coverage'") - 20]
    problems = check_html(truncated)
    assert "coverage" in problems and "bench" in problems
    leaky = full.replace(
        "</body>", "<script src='https://cdn.example/x.js'></script>"
        "</body>")
    assert any(p.startswith("external-asset") for p in check_html(leaky))


def test_self_check_passes():
    code, message = self_check()
    assert code == 0, message
    assert "self-check ok" in message


# -- classification ----------------------------------------------------------------

def test_classify_by_shape():
    fx = SELF_CHECK_FIXTURE
    assert classify("a.json", fx["analysis.json"]) == "analysis"
    assert classify("m.json", fx["mc.json"]) == "mc"
    assert classify("e.jsonl", fx["events.jsonl"]) == "events"
    assert classify("b.json", fx["BENCH_mc.json"]) == "bench"
    assert classify("l.json",
                    fx["analysis.json"]["lint"]) == "lint"
    assert classify("x.json", {"unrelated": 1}) is None
    assert classify("x.json", []) is None
    assert classify("x.json", "text") is None


def test_collect_inputs_scans_and_buckets(tmp_path):
    fx = SELF_CHECK_FIXTURE
    (tmp_path / "analysis.json").write_text(
        json.dumps(fx["analysis.json"]))
    (tmp_path / "mc.json").write_text(json.dumps(fx["mc.json"]))
    (tmp_path / "events.jsonl").write_text(
        "\n".join(json.dumps(e) for e in fx["events.jsonl"]))
    (tmp_path / "BENCH_mc.json").write_text(
        json.dumps(fx["BENCH_mc.json"]))
    (tmp_path / "REGRESS_history.jsonl").write_text(
        "\n".join(json.dumps(e) for e in fx["history"]))
    (tmp_path / "BENCH_history.jsonl").write_text(
        "\n".join(json.dumps(e) for e in fx["BENCH_history"]))
    (tmp_path / "crossval.txt").write_text(fx["crossval.txt"])
    (tmp_path / "summary_stats.json").write_text(
        json.dumps(fx["summary_stats.json"]))
    (tmp_path / "fleet.json").write_text(json.dumps(fx["fleet.json"]))
    (tmp_path / "junk.json").write_text("not json {")
    for manifest in fx["runs"]:
        run_dir = tmp_path / manifest["run_id"]
        run_dir.mkdir()
        (run_dir / "manifest.json").write_text(json.dumps(manifest))
    baselines = tmp_path / "baselines"
    baselines.mkdir()
    (baselines / "BENCH_mc.json").write_text(
        json.dumps(fx["baseline_BENCH_mc.json"]))

    inputs = collect_inputs([tmp_path], baseline_dir=baselines)
    assert [label for label, _ in inputs.analyses] == ["analysis.json"]
    assert [label for label, _ in inputs.mcs] == ["mc.json"]
    assert [label for label, _ in inputs.events] == ["events.jsonl"]
    assert set(inputs.bench_fresh) == {"BENCH_mc.json"}
    assert set(inputs.bench_baseline) == {"BENCH_mc.json"}
    assert len(inputs.history) == 2
    assert len(inputs.bench_history) == 8
    assert [label for label, _ in inputs.tables] == ["crossval.txt"]
    assert [label for label, _ in inputs.summaries] \
        == ["summary_stats.json"]
    assert [label for label, _ in inputs.fleets] == ["fleet.json"]
    assert sorted(m["run_id"] for m in inputs.runs) == \
        sorted(m["run_id"] for m in fx["runs"])

    html_text = render_report(inputs)
    assert check_html(html_text) == []
    assert "class='empty'" not in html_text


def test_collect_inputs_skips_missing_paths(tmp_path):
    # CI always passes .repro/runs, which may not exist yet
    inputs = collect_inputs([tmp_path / "no-such-dir",
                             tmp_path / "no-such-file.json"])
    assert inputs.runs == []
    assert inputs.analyses == []


# -- CLI ---------------------------------------------------------------------------

def test_cli_report_writes_artifact(tmp_path, capsys):
    fx = SELF_CHECK_FIXTURE
    artifacts = tmp_path / "artifacts"
    artifacts.mkdir()
    (artifacts / "mc.json").write_text(json.dumps(fx["mc.json"]))
    (artifacts / "analysis.json").write_text(
        json.dumps(fx["analysis.json"]))
    out = tmp_path / "report.html"
    code = cli.main(["report", str(artifacts), "-o", str(out),
                     "--title", "pr4"])
    assert code == 0
    assert f"wrote {out}" in capsys.readouterr().out
    html_text = out.read_text()
    assert check_html(html_text) == []
    assert "<title>pr4</title>" in html_text
    auditor = _audit(html_text)
    assert auditor.errors == [] and auditor.stack == []


def test_cli_report_self_check(capsys):
    assert cli.main(["report", "--self-check"]) == 0
    assert "self-check ok" in capsys.readouterr().out


def test_cli_report_no_inputs_errors(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)  # no benchmarks/out default here
    code = cli.main(["report", "-o", str(tmp_path / "r.html")])
    assert code == 2
    assert "no inputs" in capsys.readouterr().err


# -- perf trajectory + flame chart -------------------------------------------------

def test_trend_section_renders_from_history():
    html_text = render_report(fixture_inputs())
    assert "Perf trajectory" in html_text
    assert "8 bench run(s)" in html_text
    # sparkline glyphs from repro.obs.bench make it into the table
    assert any(ch in html_text for ch in "▁▂▃▄▅▆▇█")


def test_trend_placeholder_never_dropped():
    html_text = render_report(ReportInputs())
    assert "id='sec-trend'" in html_text
    assert "repro bench run" in html_text      # the how-to hint
    assert check_html(html_text) == []


def test_flame_chart_rendered_from_folded_profile():
    html_text = render_report(fixture_inputs())
    assert "flame chart (collapsed region stacks)" in html_text
    # nested frames from the fixture's collapsed stacks appear as rects
    assert "mc.successors" in html_text


def test_classify_v2_bench_document():
    doc = {"v": 2, "at": 1.0, "repeats": 3,
           "env": {"python": "3.x", "platform": "t", "cpu_count": 1},
           "records": list(SELF_CHECK_FIXTURE["BENCH_mc.json"])}
    assert classify("BENCH_mc.json", doc) == "bench"


def test_collect_inputs_unwraps_v2_and_routes_history(tmp_path):
    fx = SELF_CHECK_FIXTURE
    v2 = {"v": 2, "at": 1.0, "repeats": 3,
          "env": {"python": "3.x", "platform": "t", "cpu_count": 1},
          "records": list(fx["BENCH_mc.json"])}
    (tmp_path / "BENCH_mc.json").write_text(json.dumps(v2))
    (tmp_path / "BENCH_history.jsonl").write_text(
        "\n".join(json.dumps(e) for e in fx["BENCH_history"]))
    inputs = collect_inputs([tmp_path])
    # v2 wrappers are unwrapped to bare record lists for the table
    assert inputs.bench_fresh["BENCH_mc.json"] == fx["BENCH_mc.json"]
    assert len(inputs.bench_history) == 8
    html_text = render_report(inputs)
    assert check_html(html_text) == []
    assert "Perf trajectory" in html_text and "bench run(s)" in html_text


# -- state-space section (graph captures + statement heatmap) ----------------------

def test_statespace_renders_graph_and_heatmap():
    html_text = render_report(fixture_inputs())
    assert "id='sec-statespace'" in html_text
    assert "graph capture, mode=por" in html_text
    assert "statement heatmap" in html_text
    assert "depth layers" in html_text
    assert "branching factor" in html_text
    # mover badges carry the palette colors
    assert "span class='mover'" in html_text
    assert "#2b8cbe" in html_text


def test_statespace_placeholder_when_absent():
    html_text = render_report(ReportInputs())
    assert "id='sec-statespace'" in html_text
    assert "no state-space introspection artifacts supplied" \
        in html_text


def test_collect_inputs_routes_graph_captures(tmp_path):
    capture = tmp_path / "graph.jsonl"
    capture.write_text("".join(
        json.dumps(r) + "\n" for r in SELF_CHECK_FIXTURE["graph.jsonl"]))
    inputs = collect_inputs([tmp_path])
    assert [label for label, _ in inputs.graphs] == ["graph.jsonl"]
    assert inputs.events == []            # not misfiled as events
    doc = inputs.graphs[0][1]
    assert doc["summary"]["nodes"] == 4


def test_collect_inputs_skips_unreadable_graph_capture(tmp_path):
    capture = tmp_path / "graph.jsonl"
    capture.write_text(
        '{"kind": "graph.header", "v": 999}\n')
    inputs = collect_inputs([tmp_path])
    assert inputs.graphs == [] and inputs.events == []


def test_self_check_consults_schema_registry(monkeypatch):
    from repro.obs import report_html, schemas

    monkeypatch.setattr(
        schemas, "check_registry",
        lambda: ["events: registry=1 live=2"])
    code, message = report_html.self_check()
    assert code == 1
    assert "schema registry" in message


# -- perf forensics section --------------------------------------------------------

def test_classify_perfdiff_document():
    doc = dict(SELF_CHECK_FIXTURE["PERFDIFF_attribution.json"])
    assert classify("anything.json", doc) == "perfdiff"


def test_forensics_section_renders_attribution_and_steps():
    html_text = render_report(fixture_inputs())
    assert "id='sec-forensics'" in html_text
    assert "DRIFT: mc.successors" in html_text
    assert "attributed work" in html_text
    # the fixture history carries an injected step: the changepoint
    # scan must annotate it with the git rev of the new regime
    assert "changepoint scan" in html_text
    assert "456789abcd" in html_text
    assert "step marker" in html_text


def test_forensics_placeholder_when_absent():
    html_text = render_report(ReportInputs())
    assert "id='sec-forensics'" in html_text
    assert "repro perf diff" in html_text


def test_collect_inputs_buckets_perfdiff(tmp_path):
    path = tmp_path / "PERFDIFF_attribution.json"
    path.write_text(json.dumps(
        SELF_CHECK_FIXTURE["PERFDIFF_attribution.json"]))
    inputs = collect_inputs([tmp_path])
    (label_doc,) = inputs.perfdiffs
    assert label_doc[0] == "PERFDIFF_attribution.json"
    assert label_doc[1]["drifted"] == ["mc.successors"]
