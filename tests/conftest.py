"""Shared fixtures: corpus analyses are session-cached (each full
inference run costs ~a second), and the persistent run ledger is
pointed at a per-test temporary directory so CLI invocations from the
suite never write into the checkout's ``.repro/runs``."""

from __future__ import annotations

import pytest

from repro import corpus
from repro.analysis import analyze_program


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER_DIR",
                       str(tmp_path / "ledger-runs"))


@pytest.fixture(scope="session")
def nfq_prime_analysis():
    return analyze_program(corpus.NFQ_PRIME)


@pytest.fixture(scope="session")
def nfq_analysis():
    return analyze_program(corpus.NFQ)


@pytest.fixture(scope="session")
def herlihy_analysis():
    return analyze_program(corpus.HERLIHY_SMALL)


@pytest.fixture(scope="session")
def gh1_analysis():
    return analyze_program(corpus.GH_PROGRAM1)


@pytest.fixture(scope="session")
def allocator_analysis():
    return analyze_program(corpus.ALLOCATOR)


@pytest.fixture(scope="session")
def treiber_analysis():
    return analyze_program(corpus.TREIBER_STACK)
