"""Parser unit tests: every construct, precedence, sugar, errors."""

import pytest

from repro.errors import ParseError
from repro.synl import ast as A
from repro.synl.parser import parse_expr, parse_program, parse_stmt
from repro.synl.printer import pretty_expr, pretty_stmt


# -- expressions ----------------------------------------------------------------

def test_integer_and_negative_const_decl():
    prog = parse_program("const X = -5;")
    assert prog.consts[0].value.value == -5


def test_boolean_and_null_literals():
    assert parse_expr("true").value is True
    assert parse_expr("false").value is False
    assert parse_expr("null").value is None


def test_precedence_mul_over_add():
    e = parse_expr("1 + 2 * 3")
    assert isinstance(e, A.Binary) and e.op == "+"
    assert isinstance(e.right, A.Binary) and e.right.op == "*"


def test_precedence_comparison_over_and():
    e = parse_expr("a < b && c == d")
    assert isinstance(e, A.Binary) and e.op == "&&"
    assert e.left.op == "<" and e.right.op == "=="


def test_precedence_and_over_or():
    e = parse_expr("a || b && c")
    assert e.op == "||" and e.right.op == "&&"


def test_left_associativity_of_subtraction():
    e = parse_expr("10 - 4 - 3")
    assert e.op == "-" and isinstance(e.left, A.Binary)
    assert e.left.op == "-"


def test_parentheses_override_precedence():
    e = parse_expr("(1 + 2) * 3")
    assert e.op == "*" and e.left.op == "+"


def test_unary_not_and_negation():
    e = parse_expr("!a")
    assert isinstance(e, A.Unary) and e.op == "!"
    e = parse_expr("-x + 1")
    assert e.op == "+" and isinstance(e.left, A.Unary)


def test_field_and_index_postfix():
    e = parse_expr("x.fd")
    assert isinstance(e, A.Field) and e.name == "fd"
    e = parse_expr("x.fd[i]")
    assert isinstance(e, A.Index) and isinstance(e.base, A.Field)


def test_ll_takes_location():
    e = parse_expr("LL(x.Next)")
    assert isinstance(e, A.LLExpr) and isinstance(e.loc, A.Field)


def test_ll_rejects_non_location():
    with pytest.raises(ParseError):
        parse_expr("LL(x + 1)")


def test_sc_and_vl_and_cas():
    sc = parse_expr("SC(Tail, next)")
    assert isinstance(sc, A.SCExpr)
    vl = parse_expr("VL(Tail)")
    assert isinstance(vl, A.VLExpr)
    cas = parse_expr("CAS(X, a, a + 1)")
    assert isinstance(cas, A.CASExpr) and isinstance(cas.new, A.Binary)


def test_new_object_and_new_array():
    assert isinstance(parse_expr("new Node"), A.New)
    arr = parse_expr("new int[W + 1]")
    assert isinstance(arr, A.NewArray) and isinstance(arr.size, A.Binary)


def test_primitive_call():
    e = parse_expr("compute(a, b)")
    assert isinstance(e, A.PrimCall) and len(e.args) == 2


# -- statements -------------------------------------------------------------------

def test_assignment():
    s = parse_stmt("x = 1;")
    assert isinstance(s, A.Assign) and isinstance(s.target, A.Var)


def test_assignment_to_non_location_rejected():
    with pytest.raises(ParseError):
        parse_stmt("x + 1 = 2;")


def test_increment_desugars_to_assignment():
    s = parse_stmt("i++;")
    assert isinstance(s, A.Assign)
    assert isinstance(s.value, A.Binary) and s.value.op == "+"
    assert s.value.right.value == 1


def test_decrement_desugars():
    s = parse_stmt("i--;")
    assert s.value.op == "-"


def test_local_declaration_chain():
    s = parse_stmt("local t = LL(Tail) in local next = t.Next in skip;")
    assert isinstance(s, A.LocalDecl)
    assert isinstance(s.body, A.LocalDecl)
    assert isinstance(s.body.body, A.Skip)


def test_if_with_and_without_else():
    s = parse_stmt("if (x == 1) skip; else return;")
    assert isinstance(s, A.If) and s.els is not None
    s = parse_stmt("if (x == 1) skip;")
    assert s.els is None


def test_loop_statement():
    s = parse_stmt("loop { skip; }")
    assert isinstance(s, A.Loop) and s.label is None


def test_labeled_loop_and_labeled_continue():
    s = parse_stmt("a2: loop { continue a2; }")
    assert isinstance(s, A.Loop) and s.label == "a2"
    inner = s.body.stmts[0]
    assert isinstance(inner, A.Continue) and inner.label == "a2"


def test_while_desugars_to_loop_if_break():
    s = parse_stmt("while (i < 3) { i++; }")
    assert isinstance(s, A.Loop)
    guard = s.body.stmts[0]
    assert isinstance(guard, A.If)
    assert isinstance(guard.els, A.Break)


def test_break_and_return_forms():
    assert isinstance(parse_stmt("break;"), A.Break)
    assert parse_stmt("break out;").label == "out"
    assert parse_stmt("return;").value is None
    assert isinstance(parse_stmt("return v;").value, A.Var)


def test_synchronized_statement():
    s = parse_stmt("synchronized (Lk) { X = 1; }")
    assert isinstance(s, A.Synchronized)


def test_assume_and_assert():
    assert isinstance(parse_stmt("TRUE(x == null);"), A.Assume)
    assert isinstance(parse_stmt("assert(x != null);"), A.AssertStmt)


def test_expression_statement_sugar():
    s = parse_stmt("SC(Tail, next);")
    assert isinstance(s, A.ExprStmt) and isinstance(s.expr, A.SCExpr)


# -- programs --------------------------------------------------------------------

def test_program_sections():
    prog = parse_program("""
        class Node { Value; Next; }
        global Head, Tail;
        global versioned Counter;
        threadlocal prv;
        const EMPTY = -1;
        init { Head = null; }
        threadinit { prv = new Node; }
        proc P(a, b) { return a; }
    """)
    assert [d.name for d in prog.globals] == ["Head", "Tail", "Counter"]
    assert prog.globals[2].versioned and not prog.globals[0].versioned
    assert prog.threadlocals[0].name == "prv"
    assert prog.consts[0].name == "EMPTY"
    assert prog.classes[0].fields == ["Value", "Next"]
    assert prog.procs[0].params == ["a", "b"]
    assert prog.init is not None and prog.threadinit is not None


def test_versioned_class_fields():
    prog = parse_program("class Desc { versioned Anchor; Next; }")
    assert prog.classes[0].versioned_fields == frozenset({"Anchor"})


def test_duplicate_init_rejected():
    with pytest.raises(ParseError):
        parse_program("init { skip; } init { skip; }")


def test_global_initializer_expression():
    prog = parse_program("global X = 3 + 4;")
    assert isinstance(prog.globals[0].init, A.Binary)


def test_garbage_at_top_level_rejected():
    with pytest.raises(ParseError):
        parse_program("banana;")


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        parse_stmt("x = 1")


def test_pretty_expr_inserts_minimal_parens():
    e = parse_expr("(a + b) * c")
    assert pretty_expr(e) == "(a + b) * c"
    e = parse_expr("a + b * c")
    assert pretty_expr(e) == "a + b * c"


def test_pretty_stmt_roundtrips_if():
    s = parse_stmt("if (!VL(Tail)) { continue; }")
    text = pretty_stmt(s)
    s2 = parse_stmt(text)
    assert A.structural_eq(s, s2)
