"""The incremental-analysis CLI surface: ``repro analyze
--incremental / --summary-store / --corpus``, the ``REPRO_SUMMARIES``
environment hook, and the ``repro summaries`` maintenance group
(list / show / gc / verify / canary) with their exit codes."""

from __future__ import annotations

import json

from repro import corpus
from repro.analysis.summaries import SummaryStore
from repro.cli import main


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return str(path)


def _store_args(tmp_path):
    return ["--summary-store", str(tmp_path / "summaries")]


# -- analyze --incremental -----------------------------------------------------

def test_incremental_analyze_miss_then_hit(tmp_path, capsys):
    target = _write(tmp_path, "q.synl", corpus.NFQ_PRIME)
    assert main(["analyze", target, "--incremental",
                 *_store_args(tmp_path)]) == 0
    cold = capsys.readouterr().out
    assert "-- summary cache --" in cold
    assert "program miss" in cold
    assert main(["analyze", target, "--incremental",
                 *_store_args(tmp_path)]) == 0
    warm = capsys.readouterr().out
    assert "program hit (replayed)" in warm
    # verdict lines agree between the fresh and the replayed run
    verdicts = [line for line in cold.splitlines() if "ATOMIC" in line]
    assert verdicts == [line for line in warm.splitlines()
                        if "ATOMIC" in line]


def test_incremental_json_doc_advertises_cached(tmp_path, capsys):
    target = _write(tmp_path, "aba.synl", corpus.ABA_STACK)
    assert main(["analyze", target, "--incremental", "--json",
                 *_store_args(tmp_path)]) == 1  # not atomic
    fresh = json.loads(capsys.readouterr().out)
    assert not fresh.get("cached")
    assert main(["analyze", target, "--incremental", "--json",
                 *_store_args(tmp_path)]) == 1
    cached = json.loads(capsys.readouterr().out)
    assert cached["cached"] is True
    strip = ("run_meta", "cached", "trace", "profile")
    assert {k: v for k, v in fresh.items() if k not in strip} \
        == {k: v for k, v in cached.items() if k not in strip}


def test_env_var_enables_incremental(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SUMMARIES",
                       str(tmp_path / "env-summaries"))
    target = _write(tmp_path, "q.synl", corpus.NFQ_PRIME)
    assert main(["analyze", target]) == 0
    assert "-- summary cache --" in capsys.readouterr().out
    assert (tmp_path / "env-summaries" / "procs").is_dir()


def test_analyze_without_file_or_corpus_exits_2(tmp_path, capsys):
    assert main(["analyze"]) == 2
    assert "needs a FILE" in capsys.readouterr().err


# -- analyze --corpus ----------------------------------------------------------

def test_corpus_analyze_clean_exits_0(tmp_path, capsys):
    assert main(["analyze", "--corpus", *_store_args(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "program" in out and "cached" in out
    # non-atomic corpus programs must not fail the batch
    assert "corpus/aba_stack" in out


def test_corpus_analyze_json_doc(tmp_path, capsys):
    assert main(["analyze", "--corpus", "--json",
                 *_store_args(tmp_path)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["programs"] and not doc["errors"] and not doc["drift"]
    assert doc["stats"]["kind"] == "summary-stats"
    labels = [row["label"] for row in doc["programs"]]
    assert "corpus/cas_counter" in labels
    assert any(label.startswith("examples/") for label in labels)


def test_corpus_drift_exits_1_with_table(tmp_path, capsys):
    assert main(["analyze", "--corpus", *_store_args(tmp_path)]) == 0
    capsys.readouterr()
    store = SummaryStore(tmp_path / "summaries")
    # tamper one cached verdict, then force a recompute of its program
    record = next(r for r in store.records("proc")
                  if r["name"] == "Inc")
    record["slice"]["atomic"] = not record["slice"]["atomic"]
    if record["slice"]["variants"]:
        record["slice"]["variants"][0]["body_atomicity"] = "nonatomic"
    store.put("proc", record["key"], record["name"],
              {k: v for k, v in record.items()
               if k not in ("v", "kind", "key", "name")})
    for path in store.iter_paths("program"):
        path.unlink()
    assert main(["analyze", "--corpus", *_store_args(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert "summary cache drift" in err
    assert "Inc" in err


# -- summaries maintenance group -----------------------------------------------

def test_summaries_list_and_show(tmp_path, capsys):
    target = _write(tmp_path, "q.synl", corpus.NFQ_PRIME)
    main(["analyze", target, "--incremental", *_store_args(tmp_path)])
    capsys.readouterr()
    store_dir = str(tmp_path / "summaries")
    assert main(["summaries", "list", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "proc" in out and "program" in out
    key = next(line.split()[1] for line in out.splitlines()
               if line.startswith("proc"))
    assert main(["summaries", "show", key[:8], "--store",
                 store_dir]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["kind"] == "proc"
    assert main(["summaries", "show", "ffff0000", "--store",
                 store_dir]) == 2


def test_summaries_gc(tmp_path, capsys):
    main(["analyze", "--corpus", *_store_args(tmp_path)])
    capsys.readouterr()
    store_dir = str(tmp_path / "summaries")
    assert main(["summaries", "gc", "--keep", "3", "--store",
                 store_dir]) == 0
    assert "removed" in capsys.readouterr().out
    store = SummaryStore(tmp_path / "summaries")
    assert store.stats()["procs"] <= 3
    assert store.stats()["programs"] <= 3


def test_summaries_verify_clean_then_tampered(tmp_path, capsys):
    target = _write(tmp_path, "q.synl", corpus.NFQ_PRIME)
    main(["analyze", target, "--incremental", *_store_args(tmp_path)])
    capsys.readouterr()
    store_dir = str(tmp_path / "summaries")
    assert main(["summaries", "verify", "--store", store_dir]) == 0
    assert "0 mismatch(es)" in capsys.readouterr().out
    store = SummaryStore(tmp_path / "summaries")
    record = next(iter(store.records("program")))
    record["doc"]["all_atomic"] = not record["doc"]["all_atomic"]
    store.put("program", record["key"], record["name"],
              {k: v for k, v in record.items()
               if k not in ("v", "kind", "key", "name")})
    assert main(["summaries", "verify", "--store", store_dir]) == 1
    assert "1 mismatch(es)" in capsys.readouterr().out


def test_summaries_canary_writes_stats_doc(tmp_path, capsys):
    stats_out = tmp_path / "summary_stats.json"
    assert main(["summaries", "canary", "--store",
                 str(tmp_path / "summaries"), "--stats-out",
                 str(stats_out)]) == 0
    out = capsys.readouterr().out
    assert "warm-cache canary: PASS" in out
    assert "100% hits" in out
    doc = json.loads(stats_out.read_text())
    assert doc["kind"] == "summary-stats"
    assert doc["canary"] and doc["ok"]
    assert doc["programs"] >= 19
