"""Rule-level tests of the step-4 adjacency-exclusion engine: each of
the five rules (lock, window W1/W2, condition, LL-agreement, conflict
case split) isolated on crafted programs, verified through the action
types it produces."""

from dataclasses import replace

from repro.analysis import InferenceOptions, analyze_program
from repro.analysis.report import line_atomicities


def labels(source, variant, options=None):
    result = analyze_program(source, options)
    return dict(line_atomicities(result, variant)), result


# -- window rule W1 (Thm 5.3): reads inside a window are protected ---------------------

W1 = """
global G;
proc Writer(v) {
  loop {
    local t = LL(G) in
    local probe = G in {
      if (SC(G, v)) { return; }
    }
  }
}
"""


def test_w1_interior_read_is_both_mover():
    got, _ = labels(W1, "Writer")
    assert got["local probe = G in"] == "B"
    assert got["local t = LL(G) in"] == "R"
    assert got["TRUE(SC(G, v));"] == "L"


def test_w1_needs_window():
    # the same read outside any window is unprotected
    source = W1 + """
    proc Reader() {
      local probe = G in { return probe; }
    }
    """
    got, _ = labels(source, "Reader")
    assert got["local probe = G in"] == "A"


def test_w1_disabled_without_window_rules():
    opts = replace(InferenceOptions(), enable_windows=False)
    got, _ = labels(W1, "Writer", opts)
    assert got["local probe = G in"] == "A"


# -- window rule W2 (Thm 5.4): whole competing blocks excluded --------------------------

# Variant-form procedure (already straight-line with TRUE): the Aux
# write sits strictly inside the LL(G)..SC(G) block, so by Thm 5.4 no
# part of another thread's block — including ITS Aux write — can be
# adjacent.
W2 = """
global G; global Aux;
proc P(v) {
  local t = LL(G) in {
    Aux = v;
    TRUE(SC(G, v));
    return;
  }
}
"""


def test_w2_write_inside_competing_block_excluded():
    got, result = labels(W2, "P")
    assert got["Aux = v;"] == "B"
    assert result.is_atomic("P")


def test_w2_loses_protection_with_outside_writer():
    source = W2 + "proc Rogue(v) { Aux = v; }"
    got, _ = labels(source, "P")
    assert got["Aux = v;"] == "A"


def test_w2_write_after_the_sc_is_outside_the_block():
    source = W2.replace(
        "Aux = v;\n    TRUE(SC(G, v));",
        "TRUE(SC(G, v));\n    Aux = v;")
    got, result = labels(source, "P")
    assert got["Aux = v;"] == "A"
    assert not result.is_atomic("P")  # ...;L;A;B composes to N


# -- lock rule (Thm 5.1) ------------------------------------------------------------------

def test_lock_rule_isolated():
    source = """
    class LockObj { unused; }
    global Lk; global V;
    init { Lk = new LockObj; V = 0; }
    proc P() { synchronized (Lk) { V = V + 1; } }
    """
    got, result = labels(source, "P")
    assert result.is_atomic("P")
    opts = replace(InferenceOptions(), enable_locks=False)
    _, without = labels(source, "P", opts)
    assert not without.is_atomic("P")


# -- conflict case split: distinct heap cells are no conflict --------------------------------

def test_fresh_objects_per_thread_do_not_conflict():
    source = """
    class Box { V; }
    global Out;
    proc P(v) {
      local b = new Box in {
        b.V = v;
        Out = b;
        local check = b.V in { return check; }
      }
    }
    """
    got, result = labels(source, "P")
    # after publishing, b.V reads are global, but all writers use
    # fresh objects: the case split discharges the conflict only when
    # aliasing is impossible — here both sides may alias (same class,
    # same field), and the read after escape is unprotected
    assert result.verdicts["P"].variants[0].body_atomicity is not None


def test_distinct_fields_never_conflict():
    source = """
    class Pair { A; B; }
    global P1;
    init { P1 = new Pair; }
    proc WriteA(v) { local p = P1 in { p.A = v; } }
    proc ReadB() { local p = P1 in { local x = p.B in { return x; } } }
    """
    got, _ = labels(source, "ReadB")
    assert got["local x = p.B in"] == "B"  # only A is written


# -- LL-agreement (the paper's a6 case) -----------------------------------------------------

def test_agreement_required_for_figure3_a6(nfq_prime_analysis):
    got = dict(line_atomicities(nfq_prime_analysis, "AddNode"))
    assert got["TRUE(VL(Tail));"] == "B"


def test_without_conditions_a6_weakens():
    from repro.corpus import NFQ_PRIME

    opts = replace(InferenceOptions(), enable_conditions=False)
    got, _ = labels(NFQ_PRIME, "AddNode", opts)
    # without Thm 5.5 the aliased case of the split is undischarged
    assert got["TRUE(VL(Tail));"] == "L"


# -- condition rule (Thm 5.5) isolated ------------------------------------------------------

COND = """
class Node { Next; }
global Tail;
init { local d = new Node in { d.Next = null; Tail = d; } }
proc Append(node) {
  loop {
    local t = LL(Tail) in
    local next = LL(t.Next) in {
      if (!VL(Tail)) { continue; }
      if (next != null) { continue; }
      if (SC(t.Next, node)) { return; }
    }
  }
}
proc Chase() {
  loop {
    local t = LL(Tail) in
    local next = t.Next in {
      if (next != null) {
        if (SC(Tail, next)) { return; }
      }
    }
  }
}
"""


def test_condition_rule_makes_chase_read_right_mover():
    got, result = labels(COND, "Chase")
    assert got["local next = t.Next in"] == "R"
    assert result.is_atomic("Chase") and result.is_atomic("Append")


def test_condition_rule_needs_complementary_conditions():
    # make Append's guard next == null disappear: conditions no longer
    # complementary, Chase's read loses its right-mover status
    source = COND.replace("if (next != null) { continue; }\n      ", "")
    got, result = labels(source, "Chase")
    assert got["local next = t.Next in"] == "A"
