"""The persistent run ledger: manifest recording, cross-run drift
diffing, crash/violation bundles, replay, and gc (docs/OBSERVABILITY.md
"Run ledger & replay")."""

from __future__ import annotations

import json

import pytest

from repro import corpus
from repro.cli import main
from repro.errors import ReproError
from repro.obs import ledger, rundiff
from repro.obs.export import validate


@pytest.fixture()
def ledger_root(tmp_path, monkeypatch):
    root = tmp_path / "runs"
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(root))
    return root


@pytest.fixture()
def sem_file(tmp_path):
    path = tmp_path / "sem.synl"
    path.write_text(corpus.BROKEN_SEMAPHORE)
    return str(path)


@pytest.fixture()
def aba_file(tmp_path):
    path = tmp_path / "aba.synl"
    path.write_text(corpus.ABA_STACK)
    return str(path)


@pytest.fixture()
def aba_fixed_file(tmp_path):
    path = tmp_path / "aba_fixed.synl"
    path.write_text(corpus.ABA_STACK_FIXED)
    return str(path)


# -- recording ---------------------------------------------------------------------

def test_analyze_records_schema_valid_manifest(ledger_root, aba_file):
    assert main(["analyze", "--lenient", aba_file]) == 0
    manifests = ledger.list_runs(ledger_root)
    assert len(manifests) == 1
    manifest = manifests[0]
    assert validate(manifest, ledger.MANIFEST_SCHEMA) == []
    assert manifest["command"] == "analyze"
    assert manifest["argv"] == ["analyze", "--lenient", aba_file]
    assert manifest["exit_code"] == 0
    assert manifest["outcome"] == "ok"
    assert manifest["wall_s"] >= 0
    # the classification summary is present and block-granular
    analysis = manifest["analysis"]
    assert analysis["procedures"]
    assert analysis["blocks"]
    assert any(cited for cited in analysis["theorems"].values())


def test_json_output_becomes_content_addressed_artifact(
        ledger_root, aba_file, capsys):
    assert main(["analyze", "--lenient", "--json", aba_file]) == 0
    capsys.readouterr()
    manifest = ledger.list_runs(ledger_root)[-1]
    arts = {a["name"]: a for a in manifest["artifacts"]}
    assert "analysis.json" in arts
    entry = arts["analysis.json"]
    run_dir = ledger_root / manifest["run_id"]
    blob = (run_dir / entry["path"]).read_bytes()
    import hashlib
    assert hashlib.sha256(blob).hexdigest() == entry["sha256"]
    assert entry["bytes"] == len(blob)
    # the stored copy is the emitted document
    doc = json.loads(blob)
    assert doc["run_meta"]["run_id"] == manifest["run_id"]


def test_ledger_disabled_records_nothing(
        ledger_root, aba_file, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER", "0")
    assert main(["analyze", "--lenient", aba_file]) == 0
    assert ledger.list_runs(ledger_root) == []


def test_meta_commands_never_grow_the_ledger(ledger_root, aba_file):
    assert main(["analyze", "--lenient", aba_file]) == 0
    main(["runs", "list"])
    main(["runs", "show", "last"])
    main(["runs", "diff", "-1", "-1"])
    assert len(ledger.list_runs(ledger_root)) == 1


# -- drift diffing -----------------------------------------------------------------

def test_identical_analyses_diff_empty(
        ledger_root, aba_file, capsys):
    assert main(["analyze", "--lenient", aba_file]) == 0
    assert main(["analyze", "--lenient", aba_file]) == 0
    code = main(["runs", "diff", "-2", "-1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "no drift" in out


def test_aba_fix_shows_classification_and_lint_drift(
        ledger_root, aba_file, aba_fixed_file, capsys):
    assert main(["analyze", "--lenient", aba_file]) == 0
    assert main(["analyze", "--lenient", aba_fixed_file]) == 0
    capsys.readouterr()
    code = main(["runs", "diff", "--json", "-2", "-1"])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["empty"] is False
    # the versioned-CAS fix reclassifies blocks and clears the aba lint
    assert doc["classification"]
    drifted_rules = {e["rule"] for e in doc["lint"]}
    assert "aba.unversioned-cas" in drifted_rules
    gained = {t for e in doc["theorems"] for t in e["gained"]}
    assert "5.4" in gained


def test_wall_time_is_informational_not_drift():
    a = {"run_id": "a", "command": "analyze", "wall_s": 1.0,
         "outcome": "ok", "exit_code": 0,
         "analysis": {"blocks": {"P/P/a1": "A"}}}
    b = dict(a, run_id="b", wall_s=99.0)
    diff = rundiff.diff_manifests(a, b)
    assert diff["empty"] is True
    assert diff["info"]["wall_s"] == {"a": 1.0, "b": 99.0}


def test_mc_verdict_drift_is_execution_drift():
    a = {"run_id": "a", "command": "mc", "outcome": "ok",
         "exit_code": 0, "mc": {"mode": "full", "states": 10,
                                "transitions": 12, "violation": None,
                                "capped": False}}
    b = {"run_id": "b", "command": "mc", "outcome": "violation",
         "exit_code": 1, "mc": {"mode": "full", "states": 7,
                                "transitions": 8,
                                "violation": "assertion failed",
                                "capped": False,
                                "fingerprint": "feedfacefeedface"}}
    diff = rundiff.diff_manifests(a, b)
    assert diff["empty"] is False
    fields = {(e["source"], e["field"]) for e in diff["execution"]}
    assert ("mc", "violation") in fields
    assert ("mc", "fingerprint") in fields
    assert diff["outcome"] == {"a": "ok", "b": "violation"}
    assert diff["exit_code"] == {"a": 0, "b": 1}


# -- crash / violation bundles -----------------------------------------------------

def test_unhandled_exception_writes_crash_bundle(
        ledger_root, aba_file, monkeypatch):
    import repro.cli as cli_mod

    def boom(*args, **kwargs):
        raise RuntimeError("injected failure")

    monkeypatch.setattr(cli_mod, "analyze_program", boom)
    with pytest.raises(RuntimeError):
        main(["analyze", aba_file])
    manifest = ledger.list_runs(ledger_root)[-1]
    assert manifest["outcome"] == "crash"
    assert manifest["crash"]["reason"] == "crash"
    assert manifest["crash"]["type"] == "RuntimeError"
    bundle = json.loads(
        (ledger_root / manifest["run_id"] / "crash.json").read_text())
    assert bundle["exception"]["type"] == "RuntimeError"
    assert "injected failure" in bundle["exception"]["traceback"]
    # the SYNL source rides along for offline reproduction
    assert aba_file in bundle["sources"]


def test_violation_outcome_captures_bundle_with_seed(
        ledger_root, sem_file, capsys):
    code = main(["run", sem_file, "DownBad()", "DownBad()",
                 "--seed", "3"])
    capsys.readouterr()
    assert code == 1
    manifest = ledger.list_runs(ledger_root)[-1]
    assert manifest["outcome"] == "violation"
    assert manifest["seed"] == 3
    assert manifest["run"]["fingerprint"]
    bundle = json.loads(
        (ledger_root / manifest["run_id"] / "crash.json").read_text())
    assert bundle["reason"] == "violation"
    assert bundle["seed"] == 3


# -- replay ------------------------------------------------------------------------

def test_replay_reproduces_mc_violation(ledger_root, sem_file, capsys):
    assert main(["mc", sem_file, "DownBad()", "DownBad()",
                 "--mode", "full"]) == 1
    capsys.readouterr()
    recorded = ledger.list_runs(ledger_root)[-1]
    assert recorded["mc"]["violation"] == "assertion failed"
    fp = recorded["mc"]["fingerprint"]
    assert fp
    code = main(["replay", "--json", "last"])
    doc = json.loads(capsys.readouterr().out)
    assert code == 0
    assert doc["reproduced"] is True
    assert doc["fingerprint_match"] is True
    assert doc["drift"]["empty"] is True
    # replay must not add a second run to the ledger
    assert len(ledger.list_runs(ledger_root)) == 1
    assert ledger.list_runs(ledger_root)[-1]["mc"]["fingerprint"] == fp


def test_replay_detects_divergence_on_tampered_fingerprint(
        ledger_root, sem_file, capsys):
    assert main(["mc", sem_file, "DownBad()", "DownBad()",
                 "--mode", "full"]) == 1
    capsys.readouterr()
    manifest = ledger.list_runs(ledger_root)[-1]
    path = ledger_root / manifest["run_id"] / "manifest.json"
    manifest["mc"]["fingerprint"] = "0" * 16
    path.write_text(json.dumps(manifest))
    code = main(["replay", "--json", "last"])
    doc = json.loads(capsys.readouterr().out)
    assert code == 1
    assert doc["reproduced"] is False
    assert doc["fingerprint_match"] is False


# -- run resolution + gc -----------------------------------------------------------

def test_resolve_run_accepts_prefix_last_and_index(
        ledger_root, aba_file):
    assert main(["analyze", "--lenient", aba_file]) == 0
    assert main(["analyze", "--lenient", aba_file]) == 0
    ids = [m["run_id"] for m in ledger.list_runs(ledger_root)]
    assert ledger.resolve_run(ledger_root, "last") == ids[-1]
    assert ledger.resolve_run(ledger_root, "-2") == ids[0]
    assert ledger.resolve_run(ledger_root, ids[0]) == ids[0]
    with pytest.raises(ReproError):
        ledger.resolve_run(ledger_root, "no-such-run")
    with pytest.raises(ReproError):
        ledger.resolve_run(ledger_root, "-99")


def test_gc_keeps_most_recent(ledger_root, aba_file, capsys):
    for _ in range(4):
        assert main(["analyze", "--lenient", aba_file]) == 0
    before = [m["run_id"] for m in ledger.list_runs(ledger_root)]
    assert main(["runs", "gc", "--keep", "2"]) == 0
    capsys.readouterr()
    after = [m["run_id"] for m in ledger.list_runs(ledger_root)]
    assert after == before[-2:]


# -- export + regress integration --------------------------------------------------

def test_run_meta_carries_run_id_inside_recorded_run(ledger_root):
    from repro.obs.export import run_meta

    rec = ledger.start(["analyze", "x.synl"], "analyze")
    try:
        meta = run_meta(seed=9)
        assert meta["run_id"] == rec.run_id
        assert meta["argv"] == ["analyze", "x.synl"]
        assert meta["seed"] == 9
        assert meta["schema_versions"]["manifest"] == \
            ledger.SCHEMA_VERSION
    finally:
        ledger.stop(rec)
    # outside a recorded run the hook degrades gracefully
    meta = run_meta()
    assert meta["run_id"] is None


def test_write_bench_attaches_artifact_and_note(ledger_root, tmp_path):
    from repro.obs.export import bench_record, write_bench

    records = [bench_record("mc/x/full", 0.25, states=100,
                            transitions=150)]
    rec = ledger.start(["mc", "x.synl"], "mc")
    try:
        write_bench(tmp_path / "BENCH_mc.json", records)
        manifest = rec.finish(0)
    finally:
        ledger.stop(rec)
    assert manifest["bench"]["records"][0]["name"] == "mc/x/full"
    assert any(a["name"] == "BENCH_mc.json"
               for a in manifest["artifacts"])


def test_regress_ledger_baselines_and_history_mirror(
        ledger_root, tmp_path):
    from repro.obs import regress
    from repro.obs.export import bench_record, write_bench

    out_dir = tmp_path / "out"
    # record a ledgered run carrying the baseline bench artifact
    rec = ledger.start(["mc", "x.synl"], "mc")
    try:
        write_bench(out_dir / "BENCH_mc.json",
                    [bench_record("mc/x/full", 0.10, states=100,
                                  transitions=150)])
        rec.finish(0)
    finally:
        ledger.stop(rec)
    baselines = regress.baselines_from_ledger()
    assert "BENCH_mc.json" in baselines
    # a 3x slower fresh file regresses against the ledgered baseline
    write_bench(out_dir / "BENCH_mc.json",
                [bench_record("mc/x/full", 0.30, states=100,
                              transitions=150)])
    code = regress.main(["--check", str(out_dir),
                         "--baselines", "ledger", "--history", "-"])
    assert code == 1
    # the history line is mirrored next to the recorded runs
    code = regress.main(["--check", str(out_dir),
                         "--baselines", "ledger"])
    assert code == 1
    mirrored = ledger_root / regress.DEFAULT_HISTORY
    assert mirrored.is_file()
    entry = json.loads(mirrored.read_text().splitlines()[-1])
    assert entry["status"] == "regression"
