"""Runtime (lock-based) atomicity checker tests — the §2 baseline."""

import pytest

from repro import corpus
from repro.analysis import atomicity as AT
from repro.dynamic import RuntimeAtomicityChecker, TracingInterp
from repro.interp import ThreadSpec, run_random, run_round_robin


def _checker_with(actions):
    """actions: list of (tid, op, addr, locks) per single invocation."""
    checker = RuntimeAtomicityChecker()
    invs = {}
    for tid, op, addr, locks in actions:
        if tid not in invs:
            invs[tid] = checker.begin(tid, f"P{tid}")
        checker.record(invs[tid], tid, op, addr, frozenset(locks))
    return checker


def test_lock_protected_accesses_are_both_movers():
    checker = _checker_with([
        (0, "read", ("g", "V"), {1}),
        (0, "write", ("g", "V"), {1}),
        (1, "write", ("g", "V"), {1}),
    ])
    verdicts = checker.verdicts()
    assert verdicts["P0"].atomic and verdicts["P1"].atomic


def test_unprotected_conflicting_accesses_are_nonmovers():
    checker = _checker_with([
        (0, "read", ("g", "V"), set()),
        (0, "write", ("g", "V"), set()),
        (1, "write", ("g", "V"), set()),
    ])
    assert not checker.verdicts()["P0"].atomic


def test_single_unprotected_access_still_atomic():
    checker = _checker_with([
        (0, "write", ("g", "V"), set()),
        (1, "write", ("g", "V"), set()),
    ])
    # one non-mover reduces (R*;A;L* with empty wings)
    assert checker.verdicts()["P0"].atomic


def test_read_only_sharing_never_conflicts():
    checker = _checker_with([
        (0, "read", ("g", "V"), set()),
        (0, "read", ("g", "W"), set()),
        (1, "read", ("g", "V"), set()),
    ])
    assert checker.verdicts()["P0"].atomic


def test_acquire_release_wrap_reduces():
    checker = _checker_with([(1, "write", ("g", "V"), {9})])
    inv = checker.begin(0, "Locked")
    checker.record(inv, 0, "acquire", ("lock", 9), frozenset({9}))
    checker.record(inv, 0, "read", ("g", "V"), frozenset({9}))
    checker.record(inv, 0, "write", ("g", "V"), frozenset({9}))
    checker.record(inv, 0, "release", ("lock", 9), frozenset())
    assert checker.verdicts()["Locked"].atomic


def test_classification_uses_whole_trace():
    checker = _checker_with([
        (0, "write", ("g", "V"), {1}),
        (1, "write", ("g", "V"), set()),   # an unprotected writer exists
        (0, "write", ("g", "V"), {1}),
    ])
    assert not checker.verdicts()["P0"].atomic


# -- via the tracing interpreter ------------------------------------------------------

def test_tracer_validates_locked_register():
    interp = TracingInterp(corpus.LOCKED_REGISTER)
    world = interp.make_world([
        ThreadSpec.of(("Write", 1), ("Read",)),
        ThreadSpec.of(("Write", 2), ("Read",)),
    ])
    run_random(interp, world, seed=0)
    verdicts = interp.checker.verdicts()
    assert verdicts["Write"].atomic and verdicts["Read"].atomic
    assert verdicts["Write"].witnesses == 2


def test_tracer_rejects_nonblocking_queue():
    """The §2 claim: the lock-based runtime baseline cannot validate
    non-blocking code that the paper's static analysis proves atomic."""
    interp = TracingInterp(corpus.NFQ_PRIME)
    world = interp.make_world([
        ThreadSpec.of(("AddNode", 1)),
        ThreadSpec.of(("AddNode", 2)),
    ])
    run_random(interp, world, seed=0)
    assert not interp.checker.verdicts()["AddNode"].atomic


def test_tracer_records_lock_events():
    interp = TracingInterp(corpus.LOCKED_REGISTER)
    world = interp.make_world([ThreadSpec.of(("Write", 5))])
    run_round_robin(interp, world)
    ops = [a.op for a in interp.checker.trace]
    assert "acquire" in ops and "release" in ops


def test_tracer_ignores_init_accesses():
    interp = TracingInterp(corpus.LOCKED_REGISTER)
    interp.make_world([ThreadSpec.of(("Write", 5))])
    # init wrote Lk and Val, but no invocation was active
    assert interp.checker.trace == []


def test_baseline_experiment_pattern():
    from repro.experiments import baseline_runtime

    rows = baseline_runtime.run(seeds=range(2))
    by = {(r.program, r.proc): r for r in rows}
    locked = by[("Locked register", "Write")]
    assert locked.runtime_atomic and locked.static_atomic
    for key, row in by.items():
        if key[0] == "Locked register":
            continue
        assert row.static_atomic and not row.runtime_atomic, key
