"""Atomicity-type calculus (§3.3): golden table plus algebraic laws.

Note the documented deviation: the paper prints A;A = A, which is
inconsistent with Lipton reduction (and with the rest of its own table,
which folds the reducible pattern R*;(A|ε);L*); we use A;A = N and
property-test that the fold interpretation and the table agree.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.atomicity import (A, Atomicity, B, L, N, R,
                                      iter_closure, join, meet,
                                      parse_atomicity, seq, seq_all)

ALL = [B, R, L, A, N]
atoms = st.sampled_from(ALL)


# -- golden values ---------------------------------------------------------------

@pytest.mark.parametrize("row,expected", [
    (B, [B, R, L, A, N]),
    (R, [R, R, A, A, N]),
    (L, [L, N, L, N, N]),
    (A, [A, N, A, N, N]),   # paper prints A;A=A — documented typo
    (N, [N, N, N, N, N]),
])
def test_seq_table(row, expected):
    assert [seq(row, col) for col in ALL] == expected


def test_iterative_closure_values():
    assert [iter_closure(t) for t in ALL] == [B, R, L, N, N]


def test_ordering():
    assert B < R < A < N
    assert B < L < A < N
    assert not (L <= R) and not (R <= L)


def test_join_of_l_and_r_is_atomic():
    assert join(L, R) is A and join(R, L) is A


def test_meet_of_l_and_r_is_bothmover():
    assert meet(L, R) is B


def test_parse_atomicity():
    assert parse_atomicity("b") is B
    assert parse_atomicity(" N ") is N


# -- algebraic laws (hypothesis) ---------------------------------------------------

@given(atoms, atoms)
def test_join_commutative(a, b):
    assert join(a, b) is join(b, a)


@given(atoms, atoms, atoms)
def test_join_associative(a, b, c):
    assert join(a, join(b, c)) is join(join(a, b), c)


@given(atoms)
def test_join_idempotent(a):
    assert join(a, a) is a


@given(atoms)
def test_bottom_and_top(a):
    assert join(B, a) is a
    assert join(N, a) is N
    assert seq(B, a) is a and seq(a, B) is a  # B is the seq identity
    assert seq(N, a) is N and seq(a, N) is N  # N absorbs


@given(atoms, atoms, atoms)
def test_seq_associative(a, b, c):
    assert seq(a, seq(b, c)) is seq(seq(a, b), c)


@given(atoms, atoms, atoms)
def test_seq_monotone(a, b, c):
    if a <= b:
        assert seq(a, c) <= seq(b, c)
        assert seq(c, a) <= seq(c, b)


@given(atoms)
def test_closure_idempotent(a):
    assert iter_closure(iter_closure(a)) is iter_closure(a)


@given(atoms)
def test_closure_extensive_on_movers(a):
    # closure never strengthens: t ⊑ t*
    assert a <= iter_closure(a)


@given(st.lists(atoms, max_size=8))
def test_seq_all_matches_pattern_fold(seq_types):
    """seq_all(ts) != N iff the sequence matches R*;(A|ε);L* with B
    transparent — the Lipton-reduction reading of the table."""
    composed = seq_all(seq_types)
    # reference recognizer
    state = "R"  # phases: R (taking right-movers) -> A -> L
    ok = True
    for t in seq_types:
        if t is B:
            continue
        if t is N:
            ok = False
            break
        if state == "R":
            if t is R:
                continue
            state = "A" if t is A else "L"
        elif state == "A":
            if t is L:
                state = "L"
            elif t is R:
                state = "R2"  # a new block started: whole stmt not atomic
                ok = False
                break
            else:
                ok = False
                break
        elif state == "L":
            if t is not L:
                ok = False
                break
    assert (composed is not N) == ok, (seq_types, composed)
