"""The bench regression watchdog: threshold logic, noise floor,
baseline lifecycle, history append, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import bench_record, write_bench
from repro.obs.regress import (DEFAULT_THRESHOLDS, MEM_FLOOR_MB,
                               NOISE_FLOOR_S, append_history,
                               check_dir, compare_records, main,
                               update_baselines)


def _mc(name="mc/x", wall_s=0.1, states=1000, transitions=2000,
        percentiles=None, mem_peak_mb=None):
    return bench_record(name, wall_s, states=states,
                        transitions=transitions,
                        percentiles=percentiles,
                        mem_peak_mb=mem_peak_mb)


# -- comparison logic --------------------------------------------------------------

def test_identical_records_pass():
    records = [_mc(), bench_record("analysis/y", 0.05)]
    assert compare_records(records, records) == []


def test_slowdown_beyond_threshold_is_flagged():
    base = [_mc(wall_s=0.1, states=0)]
    fresh = [_mc(wall_s=0.14, states=0)]
    (finding,) = compare_records(fresh, base)
    assert finding.severity == "regression"
    assert finding.metric == "wall_s"
    assert "+40.0%" in finding.message


def test_slowdown_within_threshold_passes():
    base = [_mc(wall_s=0.1, states=0)]
    fresh = [_mc(wall_s=0.12, states=0)]  # +20% < 25%
    assert compare_records(fresh, base) == []


def test_noise_floor_suppresses_micro_timings():
    base = [_mc(wall_s=0.001, states=0)]
    fresh = [_mc(wall_s=0.004, states=0)]  # 4x, but both under 5ms
    assert compare_records(fresh, base) == []
    assert NOISE_FLOOR_S == 0.005


def test_throughput_drop_is_flagged():
    base = [_mc(wall_s=0.1, states=1000)]
    fresh = [_mc(wall_s=0.1, states=1000)]
    fresh[0]["states_per_s"] = base[0]["states_per_s"] * 0.5
    findings = compare_records(fresh, base)
    assert any(f.metric == "states_per_s"
               and f.severity == "regression" for f in findings)


def test_p95_growth_is_flagged_only_when_both_sides_have_it():
    pct = {"p50": 0.1, "p95": 0.1, "p99": 0.1}
    worse = {"p50": 0.1, "p95": 0.2, "p99": 0.2}
    base = [_mc(percentiles=pct)]
    assert compare_records([_mc(percentiles=worse)], base, ) \
        and compare_records([_mc(percentiles=worse)], base)[0].metric \
        == "p95"
    # no percentiles on the fresh side: silently skipped
    assert all(f.metric != "p95"
               for f in compare_records([_mc()], base))


def test_state_count_drift_is_a_note_not_a_failure():
    base = [_mc(states=1000)]
    fresh = [_mc(states=900)]
    fresh[0]["states_per_s"] = base[0]["states_per_s"]
    findings = compare_records(fresh, base)
    assert all(f.severity == "note" for f in findings)
    assert any(f.metric == "states" for f in findings)


def test_missing_baseline_record_is_a_regression():
    base = [_mc("mc/a"), _mc("mc/b")]
    findings = compare_records([_mc("mc/a")], base)
    (finding,) = findings
    assert finding.severity == "regression"
    assert finding.name == "mc/b"


def test_new_record_is_a_note():
    findings = compare_records([_mc("mc/a"), _mc("mc/new")],
                               [_mc("mc/a")])
    (finding,) = findings
    assert finding.severity == "note" and finding.name == "mc/new"


def test_mem_growth_beyond_threshold_is_flagged():
    base = [_mc(mem_peak_mb=10.0)]
    fresh = [_mc(mem_peak_mb=14.0)]  # +40% and +4 MB
    findings = compare_records(fresh, base)
    (finding,) = [f for f in findings if f.metric == "mem_peak_mb"]
    assert finding.severity == "regression"
    assert "+40.0%" in finding.message
    assert DEFAULT_THRESHOLDS["mem_peak_mb"] == 0.30


def test_mem_growth_under_absolute_floor_is_allocator_noise():
    base = [_mc(mem_peak_mb=1.0)]
    fresh = [_mc(mem_peak_mb=1.8)]  # +80%, but only +0.8 MB
    assert MEM_FLOOR_MB == 1.0
    assert all(f.metric != "mem_peak_mb"
               for f in compare_records(fresh, base))


def test_mem_check_skipped_when_either_side_lacks_the_field():
    with_mem = [_mc(mem_peak_mb=50.0)]
    without = [_mc()]
    assert all(f.metric != "mem_peak_mb"
               for f in compare_records(with_mem, without))
    assert all(f.metric != "mem_peak_mb"
               for f in compare_records(without, with_mem))


def test_custom_thresholds_override_defaults():
    base = [_mc(wall_s=0.1, states=0)]
    fresh = [_mc(wall_s=0.12, states=0)]
    assert compare_records(fresh, base) == []
    assert compare_records(fresh, base, {"wall_s": 0.1})
    assert DEFAULT_THRESHOLDS["wall_s"] == 0.25


# -- directory-level checks --------------------------------------------------------

@pytest.fixture
def dirs(tmp_path):
    out = tmp_path / "out"
    baselines = tmp_path / "baselines"
    out.mkdir()
    baselines.mkdir()
    records = [_mc("mc/nfq/full", wall_s=0.05, states=500)]
    write_bench(out / "BENCH_mc.json", records)
    write_bench(baselines / "BENCH_mc.json", records)
    return out, baselines


def test_check_dir_ok(dirs):
    out, baselines = dirs
    report = check_dir(out, baselines)
    assert report["status"] == "ok"
    assert report["compared"] == ["BENCH_mc.json"]
    assert report["regressions"] == 0


def test_check_dir_flags_degraded_file(dirs):
    out, baselines = dirs
    records = json.loads((out / "BENCH_mc.json").read_text())
    records[0]["wall_s"] *= 3
    records[0]["states_per_s"] /= 3
    (out / "BENCH_mc.json").write_text(json.dumps(records))
    report = check_dir(out, baselines)
    assert report["status"] == "regression"
    assert report["regressions"] == 2
    metrics = {f["metric"] for f in report["findings"]}
    assert metrics == {"wall_s", "states_per_s"}


def test_check_dir_requires_baseline(dirs):
    out, baselines = dirs
    (baselines / "BENCH_mc.json").unlink()
    with pytest.raises(ValueError, match="no baseline"):
        check_dir(out, baselines)


def test_check_dir_requires_some_bench_file(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(ValueError, match="no BENCH"):
        check_dir(empty, tmp_path)


def test_update_baselines_promotes_fresh_files(dirs):
    out, baselines = dirs
    records = json.loads((out / "BENCH_mc.json").read_text())
    records[0]["wall_s"] *= 3
    (out / "BENCH_mc.json").write_text(json.dumps(records))
    assert check_dir(out, baselines)["status"] == "regression"
    written = update_baselines(out, baselines)
    assert [p.name for p in written] == ["BENCH_mc.json"]
    assert check_dir(out, baselines)["status"] == "ok"


def test_history_is_append_only(dirs, tmp_path):
    out, baselines = dirs
    history = tmp_path / "hist.jsonl"
    for _ in range(3):
        append_history(history, check_dir(out, baselines))
    lines = [json.loads(l)
             for l in history.read_text().splitlines()]
    assert len(lines) == 3
    assert all(e["status"] == "ok" and "at" in e for e in lines)


# -- CLI ---------------------------------------------------------------------------

def test_main_exit_codes(dirs, tmp_path, capsys):
    out, baselines = dirs
    history = tmp_path / "hist.jsonl"
    argv = ["--check", str(out), "--baselines", str(baselines),
            "--history", str(history)]
    assert main(argv) == 0
    assert "ok: 0 regression(s)" in capsys.readouterr().out

    records = json.loads((out / "BENCH_mc.json").read_text())
    records[0]["wall_s"] *= 3
    (out / "BENCH_mc.json").write_text(json.dumps(records))
    assert main(argv) == 1
    assert "[REGRESSION]" in capsys.readouterr().out
    assert len(history.read_text().splitlines()) == 2

    assert main(argv + ["--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["status"] == "regression"

    assert main(["--check", str(tmp_path / "missing"),
                 "--baselines", str(baselines)]) == 2
    assert "error:" in capsys.readouterr().err


def test_main_update_then_check(dirs, capsys):
    out, baselines = dirs
    records = json.loads((out / "BENCH_mc.json").read_text())
    records[0]["wall_s"] *= 3
    (out / "BENCH_mc.json").write_text(json.dumps(records))
    argv = ["--check", str(out), "--baselines", str(baselines)]
    assert main(argv + ["--update"]) == 0
    assert "baseline updated" in capsys.readouterr().out
    assert main(argv + ["--history", "-"]) == 0


# -- median-of-repeats gating ------------------------------------------------------

def _stat(wall_median, iqr_s=0.0, wall_s=None):
    record = _mc(wall_s=wall_s if wall_s is not None
                 else wall_median, states=0)
    record["stats"] = {"repeats": 5, "min": wall_median - iqr_s,
                       "max": wall_median + iqr_s,
                       "mean": wall_median, "median": wall_median,
                       "iqr": iqr_s}
    return record


def test_median_gates_over_single_shot_wall():
    # a hand-edited record whose wall_s spiked but whose median did
    # not must pass: stats.median is the gated value
    base = [_stat(0.1)]
    fresh = [_stat(0.1, wall_s=0.9)]
    assert compare_records(fresh, base) == []
    # and a genuine median regression is still caught
    (finding,) = compare_records([_stat(0.2)], base)
    assert finding.metric == "wall_s"


def test_iqr_noise_band_suppresses_wobbly_pairs():
    # +30% median delta, but the combined IQR swallows it
    base = [_stat(0.1, iqr_s=0.02)]
    fresh = [_stat(0.13, iqr_s=0.02)]
    assert all(f.metric != "wall_s"
               for f in compare_records(fresh, base))
    # tight IQR: the same delta is a real regression
    (finding,) = compare_records([_stat(0.13, iqr_s=0.001)],
                                 [_stat(0.1, iqr_s=0.001)])
    assert finding.metric == "wall_s"


def test_p95_floor_suppresses_small_sample_tail_jitter():
    from repro.obs.regress import P95_FLOOR_S

    assert P95_FLOOR_S == 2 * NOISE_FLOOR_S
    # sub-floor p95s double: jitter from a 3-sample max, not a tail
    base = [_mc(percentiles={"p50": 0.004, "p95": 0.004,
                             "p99": 0.004})]
    fresh = [_mc(percentiles={"p50": 0.004, "p95": 0.009,
                              "p99": 0.009})]
    assert all(f.metric != "p95"
               for f in compare_records(fresh, base))


def test_check_dir_accepts_v2_documents(dirs):
    out, baselines = dirs
    records = json.loads((out / "BENCH_mc.json").read_text())
    v2 = {"v": 2, "at": 1.0, "repeats": 3,
          "env": {"python": "3.x", "platform": "t", "cpu_count": 1},
          "records": records}
    (out / "BENCH_mc.json").write_text(json.dumps(v2))
    report = check_dir(out, baselines)   # v2 fresh vs v1 baseline
    assert report["status"] == "ok"


def test_p95_gate_skipped_for_small_sample_harness_records():
    from repro.obs.regress import MIN_P95_REPEATS

    def stat_p95(p95, repeats):
        record = _stat(0.1)
        record["stats"]["repeats"] = repeats
        record["percentiles"] = {"p50": 0.05, "p95": p95, "p99": p95}
        return record

    # 3-repeat p95 is the sample max: a 3x spike must not gate
    base = [stat_p95(0.05, 3)]
    fresh = [stat_p95(0.15, 3)]
    assert all(f.metric != "p95"
               for f in compare_records(fresh, base))
    # with a real sample behind it, the same spike is a regression
    big_base = [stat_p95(0.05, MIN_P95_REPEATS)]
    big_fresh = [stat_p95(0.15, MIN_P95_REPEATS)]
    (finding,) = compare_records(big_fresh, big_base)
    assert finding.metric == "p95"


def test_wall_delta_must_clear_absolute_floor():
    # +76% relatively, but only +4ms absolutely: machine-load jitter
    # on a small benchmark, not a regression
    base = [_stat(0.0053)]
    fresh = [_stat(0.0094)]
    assert all(f.metric != "wall_s"
               for f in compare_records(fresh, base))
    # the same relative growth with real absolute weight still gates
    (finding,) = compare_records([_stat(0.094)], [_stat(0.053)])
    assert finding.metric == "wall_s"


def test_env_mismatch_downgrades_timing_to_notes(tmp_path):
    # baselines recorded on one machine, fresh run on another: wall
    # regressions measure the hardware delta, so they inform instead
    # of gating; a missing record still fails
    def v2(records, cpu):
        return {"v": 2, "at": 1.0, "repeats": 3,
                "env": {"python": "3.x", "platform": "t",
                        "cpu_count": cpu},
                "records": records}

    out, baselines = tmp_path / "out", tmp_path / "baselines"
    out.mkdir(), baselines.mkdir()
    (baselines / "BENCH_mc.json").write_text(
        json.dumps(v2([_stat(0.05)], cpu=8)))
    (out / "BENCH_mc.json").write_text(
        json.dumps(v2([_stat(0.2)], cpu=2)))      # 4x slower, 2 cpus
    report = check_dir(out, baselines)
    assert report["status"] == "ok"
    assert "cpu_count 8 -> 2" in report["env_mismatch"]
    (finding,) = [f for f in report["findings"]
                  if f["metric"] == "wall_s"]
    assert finding["severity"] == "note"
    assert "env mismatch" in finding["message"]
    # same env: the identical delta gates as a regression
    (out / "BENCH_mc.json").write_text(
        json.dumps(v2([_stat(0.2)], cpu=8)))
    assert check_dir(out, baselines)["status"] == "regression"
    # structural findings survive the downgrade
    (out / "BENCH_mc.json").write_text(json.dumps(v2([], cpu=2)))
    assert check_dir(out, baselines)["status"] == "regression"


# -- verdict provenance + auto-attribution -----------------------------------------

def _counter_rec(name, wall_s, work):
    rec = _mc(name=name, wall_s=wall_s)
    rec["counters"] = {"mc.successors": {"calls": 0, "work": work}}
    return rec


def test_findings_name_their_baseline_source(tmp_path, capsys):
    base, fresh = tmp_path / "baselines", tmp_path / "out"
    write_bench(base / "BENCH_mc.json", [_mc(wall_s=0.1, states=0)])
    write_bench(fresh / "BENCH_mc.json", [_mc(wall_s=0.2, states=0)])
    report = check_dir(fresh, base)
    (finding,) = report["findings"]
    assert finding["source"] == str(base / "BENCH_mc.json")
    assert report["baseline_sources"]["BENCH_mc.json"] == \
        str(base / "BENCH_mc.json")
    # the rendered verdict line carries the provenance too
    code = main(["--check", str(fresh), "--baselines", str(base)])
    assert code == 1
    out = capsys.readouterr().out
    assert f"[vs {base / 'BENCH_mc.json'}]" in out


def test_gate_failure_auto_writes_attribution(tmp_path, capsys):
    from repro.obs.regress import ATTRIBUTION_FILE

    base, fresh = tmp_path / "baselines", tmp_path / "out"
    write_bench(base / "BENCH_mc.json",
                [_counter_rec("mc/x", 0.1, 1000)])
    write_bench(fresh / "BENCH_mc.json",
                [_counter_rec("mc/x", 0.2, 1600)])
    code = main(["--check", str(fresh), "--baselines", str(base)])
    assert code == 1
    artifact = fresh / ATTRIBUTION_FILE
    assert artifact.is_file()
    doc = json.loads(artifact.read_text())
    assert doc["kind"] == "perfdiff"
    assert doc["drifted"] == ["mc.successors"]
    out = capsys.readouterr().out
    assert "attribution written:" in out


def test_passing_gate_writes_no_attribution(tmp_path, capsys):
    from repro.obs.regress import ATTRIBUTION_FILE

    base, fresh = tmp_path / "baselines", tmp_path / "out"
    write_bench(base / "BENCH_mc.json",
                [_counter_rec("mc/x", 0.1, 1000)])
    write_bench(fresh / "BENCH_mc.json",
                [_counter_rec("mc/x", 0.1, 1000)])
    assert main(["--check", str(fresh),
                 "--baselines", str(base)]) == 0
    assert not (fresh / ATTRIBUTION_FILE).exists()
