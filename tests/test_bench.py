"""The statistical bench harness: repeat statistics, the trajectory
file, noise-aware comparison verdicts, the EWMA rate/ETA estimator,
and the ``repro bench`` CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.obs.bench import (BenchCase, append_history,
                             compare_records_stats, compare_sets,
                             env_fingerprint, history_line, iqr,
                             load_history, median, percentiles_of,
                             render_compare, render_trend,
                             resolve_repeats, resolve_side, run_case,
                             run_matrix, sparkline, summarize,
                             trend_series, write_run)
from repro.obs.export import bench_record, write_bench
from repro.obs.metrics import EwmaRate


# -- repeat statistics -------------------------------------------------------------

def test_median_small_n():
    assert median([]) == 0.0
    assert median([3.0]) == 3.0
    assert median([1.0, 3.0]) == 2.0          # mean of middle two
    assert median([1.0, 100.0, 2.0]) == 2.0   # order-insensitive
    assert median([4.0, 1.0, 3.0, 2.0]) == 2.5


def test_iqr_small_n():
    assert iqr([]) == 0.0
    assert iqr([5.0]) == 0.0                  # N=1 must not blow up
    assert iqr([1.0, 3.0]) == 2.0
    # Tukey hinges on odd N share the middle sample
    assert iqr([1.0, 2.0, 3.0, 4.0, 5.0]) == 2.0


def test_summarize_fields():
    stats = summarize([0.02, 0.01, 0.03])
    assert stats["repeats"] == 3
    assert stats["min"] == 0.01 and stats["max"] == 0.03
    assert stats["median"] == 0.02
    assert stats["mean"] == pytest.approx(0.02)
    assert stats["iqr"] == pytest.approx(0.01)  # hinges share middle


def test_percentiles_nearest_rank():
    assert percentiles_of([]) is None
    pct = percentiles_of([0.01, 0.02, 0.03])
    assert pct["p50"] == 0.02
    assert pct["p95"] == pct["p99"] == 0.03


def test_resolve_repeats_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_REPEATS", raising=False)
    assert resolve_repeats(None) == 5          # default
    assert resolve_repeats(3) == 3             # flag wins
    assert resolve_repeats(0) == 1             # clamped
    monkeypatch.setenv("REPRO_BENCH_REPEATS", "7")
    assert resolve_repeats(None) == 7          # env beats default
    assert resolve_repeats(2) == 2             # flag beats env
    monkeypatch.setenv("REPRO_BENCH_REPEATS", "junk")
    assert resolve_repeats(None) == 5          # bad env falls through


def test_env_fingerprint_fields():
    env = env_fingerprint()
    assert env["python"] and env["platform"]
    assert isinstance(env["cpu_count"], int)


# -- running a matrix --------------------------------------------------------------

def _fake_case(name="mc/fake", kind="mc", walls=(0.03, 0.01, 0.02)):
    calls = {"n": 0}

    def run():
        wall = walls[min(calls["n"], len(walls) - 1)]
        calls["n"] += 1
        return wall, {"states": 64, "transitions": 96}

    return BenchCase(name, kind, run), calls


def test_run_case_emits_median_of_repeats():
    case, calls = _fake_case()
    record = run_case(case, repeats=3, warmup=1)
    assert calls["n"] == 4                     # 1 warmup + 3 timed
    # warmup discarded: timed samples are walls[1:] + last repeated
    assert record["wall_s"] == record["stats"]["median"]
    assert record["stats"]["repeats"] == 3
    assert record["states"] == 64
    assert record["percentiles"]["p50"] == record["stats"]["median"]


def test_run_matrix_splits_by_kind_and_stamps_env(tmp_path):
    mc_case, _ = _fake_case("mc/a", "mc")
    an_case, _ = _fake_case("analysis/b", "analysis")
    docs = run_matrix([mc_case, an_case], repeats=2, warmup=0)
    assert set(docs) == {"BENCH_mc.json", "BENCH_analysis.json"}
    for doc in docs.values():
        assert doc["v"] == 2 and doc["repeats"] == 2
        assert doc["env"]["python"]
        assert len(doc["records"]) == 1
    paths = write_run(docs, tmp_path)
    assert all(p.is_file() for p in paths)


# -- the append-only trajectory ----------------------------------------------------

def _docs(wall=0.02, rate=3200.0):
    record = bench_record("mc/a", wall, states=64, transitions=96,
                          stats=summarize([wall, wall, wall]))
    record["states_per_s"] = rate
    return {"BENCH_mc.json": {"v": 2, "at": 1.0,
                              "env": {"python": "3.x",
                                      "platform": "test",
                                      "cpu_count": 1},
                              "repeats": 3, "records": [record]}}


def test_history_round_trip(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    assert load_history(path) == []
    append_history(path, history_line(_docs(0.02)))
    append_history(path, history_line(_docs(0.01)))
    path.open("a").write("not json\n{\"no\": \"metrics\"}\n")
    entries = load_history(path)                # garbage filtered
    assert len(entries) == 2
    assert entries[0]["metrics"]["mc/a"]["wall_s"] == 0.02
    assert entries[0]["metrics"]["mc/a"]["states_per_s"] == 3200.0
    assert "iqr" in entries[0]["metrics"]["mc/a"]


def test_trend_series_and_render(tmp_path):
    history = [history_line(_docs(w)) for w in (0.02, 0.015, 0.01)]
    series = trend_series(history, "wall_s")
    assert [v for _, v in series["mc/a"]] == [0.02, 0.015, 0.01]
    text = render_trend(history)
    assert "mc/a" in text and "-50.0%" in text
    assert "3 run(s)" in text
    assert render_trend(history, last=2).count("run(s)") == 1
    assert "no trajectory yet" in render_trend([])


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([1.0, 1.0]) == "▁▁"       # flat series
    line = sparkline([0.0, 0.5, 1.0])
    assert line[0] == "▁" and line[-1] == "█"


# -- noise-aware comparison --------------------------------------------------------

def _rec(name="mc/a", wall=0.1, iqr_s=0.0):
    return bench_record(name, wall, states=10, transitions=20,
                        stats={"repeats": 3, "min": wall - iqr_s,
                               "max": wall + iqr_s, "mean": wall,
                               "median": wall, "iqr": iqr_s})


def test_compare_within_noise_band_is_tilde():
    # 20% slower but the IQR bands swallow the delta
    rows = compare_records_stats([_rec(wall=0.1, iqr_s=0.01)],
                                 [_rec(wall=0.12, iqr_s=0.015)])
    assert rows[0]["verdict"] == "~"


def test_compare_flags_significant_slowdown():
    rows = compare_records_stats([_rec(wall=0.1, iqr_s=0.001)],
                                 [_rec(wall=0.15, iqr_s=0.001)])
    assert rows[0]["verdict"] == "slower"
    assert rows[0]["delta_pct"] == 50.0


def test_compare_speedup_and_noise_floor():
    rows = compare_records_stats([_rec(wall=0.15)], [_rec(wall=0.1)])
    assert rows[0]["verdict"] == "faster"
    # both sides under the 5ms floor: never significant
    rows = compare_records_stats([_rec(wall=0.001)],
                                 [_rec(wall=0.004)])
    assert rows[0]["verdict"] == "~"


def test_compare_new_and_missing_records():
    rows = compare_records_stats([_rec("mc/old")], [_rec("mc/new")])
    verdicts = {r["name"]: r["verdict"] for r in rows}
    assert verdicts == {"mc/old": "missing", "mc/new": "new"}


def test_compare_sets_drift_semantics():
    a = {"BENCH_mc.json": [_rec(wall=0.1)]}
    faster = {"BENCH_mc.json": [_rec(wall=0.05)]}
    report = compare_sets(a, faster)
    assert not report["drift"] and report["improvements"] == 1
    slower = {"BENCH_mc.json": [_rec(wall=0.2)]}
    report = compare_sets(a, slower)
    assert report["drift"] and report["regressions"] == 1
    missing = {"BENCH_mc.json": []}
    assert compare_sets(a, missing)["drift"]
    text = render_compare(compare_sets(a, slower))
    assert "DRIFT" in text and "slower" in text


def test_resolve_side_forms(tmp_path):
    doc = _docs()["BENCH_mc.json"]
    file_path = tmp_path / "BENCH_mc.json"
    write_bench(file_path, doc)
    by_file = resolve_side(str(file_path))
    by_dir = resolve_side(str(tmp_path))
    assert by_file == by_dir
    assert by_file["BENCH_mc.json"][0]["name"] == "mc/a"
    baseline = resolve_side("baseline", baseline_dir=tmp_path)
    assert baseline == by_dir
    with pytest.raises(ValueError):
        resolve_side(str(tmp_path / "nope"))
    empty = tmp_path / "empty_dir"
    empty.mkdir()
    with pytest.raises(ValueError):
        resolve_side(str(empty))


# -- the EWMA rate / ETA estimator -------------------------------------------------

def test_ewma_first_update_baselines():
    rate = EwmaRate()
    assert rate.update(100, now=1.0) == 0.0    # nothing to rate yet
    assert rate.update(200, now=2.0) == pytest.approx(100.0)


def test_ewma_smooths_toward_instantaneous():
    rate = EwmaRate(alpha=0.5)
    rate.update(0, now=0.0)
    rate.update(100, now=1.0)                  # 100/s baseline
    smoothed = rate.update(400, now=2.0)       # inst 300/s
    assert 100.0 < smoothed < 300.0


def test_ewma_ignores_zero_dt_and_counter_resets():
    rate = EwmaRate()
    rate.update(0, now=0.0)
    first = rate.update(100, now=1.0)
    assert rate.update(200, now=1.0) == first  # dt=0 ignored
    # a counter reset (fresh search) re-baselines without a negative
    # or absurd rate
    assert rate.update(5, now=2.0) == first
    assert rate.update(105, now=3.0) > 0.0


def test_ewma_eta():
    rate = EwmaRate()
    assert rate.eta_s(100) is None             # no rate yet
    rate.update(0, now=0.0)
    rate.update(100, now=1.0)
    assert rate.eta_s(200) == pytest.approx(2.0)
    assert rate.eta_s(0) == 0.0
    assert rate.eta_s(-5) == 0.0


# -- CLI surface -------------------------------------------------------------------

def test_cli_bench_run_trend_compare(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv("REPRO_LEDGER", "0")
    out = tmp_path / "out"
    assert main(["bench", "run", "--quick", "--out", str(out)]) == 0
    assert main(["bench", "run", "--quick", "--out", str(out)]) == 0
    capsys.readouterr()
    history = out / "BENCH_history.jsonl"
    assert len(load_history(history)) == 2
    assert main(["bench", "trend", "--history", str(history)]) == 0
    text = capsys.readouterr().out
    assert "2 run(s)" in text and "analysis/nfq_prime" in text
    # back-to-back quick runs of the same code: no significant drift
    code = main(["bench", "compare", str(out), str(out), "--json"])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["drift"] is False


def test_cli_bench_compare_usage_error(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv("REPRO_LEDGER", "0")
    code = main(["bench", "compare", str(tmp_path / "a"),
                 str(tmp_path / "b")])
    assert code == 2
    assert "cannot resolve" in capsys.readouterr().err


def test_compare_noise_band_floored_at_absolute_floor():
    # +77% relatively but under 5ms absolutely: jitter, not drift
    rows = compare_records_stats([_rec(wall=0.0053)],
                                 [_rec(wall=0.0094)])
    assert rows[0]["verdict"] == "~"
    rows = compare_records_stats([_rec(wall=0.053)],
                                 [_rec(wall=0.094)])
    assert rows[0]["verdict"] == "slower"


def test_trend_single_sample_renders_explicit_note():
    history = [history_line(_docs(0.02))]
    text = render_trend(history)
    assert "1 run(s)" in text
    assert "1 sample" in text
    assert "mc/a" in text                 # record still listed
    assert "%" not in text                # no bogus delta from 1 point
    # and the note disappears as soon as a second run exists
    assert "1 sample" not in render_trend(
        [history_line(_docs(0.02)), history_line(_docs(0.01))])


def test_report_trend_single_sample_note():
    from repro.obs.report_html import ReportInputs, render_report

    entry = history_line(_docs(0.02))
    one = render_report(ReportInputs(bench_history=[entry]))
    assert "1 sample" in one
    two = render_report(ReportInputs(
        bench_history=[entry, history_line(_docs(0.01))]))
    assert "1 sample" not in two


def test_ewma_eta_is_monotone_under_steady_rate():
    # deadline-style consumer: with a steady rate and a shrinking
    # remainder the ETA must walk monotonically down to zero, never
    # jitter upward (what `repro top` renders as "deadline in Ns")
    rate = EwmaRate()
    rate.update(0, now=0.0)
    etas = []
    for i in range(1, 6):
        rate.update(i * 100, now=float(i))   # steady 100/s
        etas.append(rate.eta_s(500 - i * 100))
    assert etas == sorted(etas, reverse=True)
    assert etas[-1] == 0.0


def test_ewma_reset_mid_run_recovers():
    # a restarted search re-baselines: the stale rate survives the
    # reset beat, then converges onto the new regime
    rate = EwmaRate(alpha=0.5)
    rate.update(0, now=0.0)
    rate.update(1000, now=1.0)                # 1000/s
    before = rate.rate
    assert rate.update(10, now=2.0) == before  # reset only re-baselines
    for i in range(3, 30):
        rate.update(10 + (i - 2) * 100, now=float(i))  # now 100/s
    assert abs(rate.rate - 100.0) < 1.0


# -- deterministic counters on bench records ---------------------------------------

def test_run_case_stamps_deterministic_counters():
    from repro.obs.bench import default_matrix

    case = next(c for c in default_matrix(quick=True)
                if c.name.startswith("analysis/"))
    first = run_case(case, repeats=1, warmup=0)
    second = run_case(case, repeats=1, warmup=0)
    assert first["counters"], "profiled pass must stamp counters"
    # counters are calls+work only -- identical across repeat runs
    assert first["counters"] == second["counters"]
    names = set(first["counters"])
    assert any(n.startswith("analysis.") for n in names)


def test_case_counters_empty_for_profiler_blind_runner():
    from repro.obs.bench import case_counters

    case = BenchCase(name="x/blind", kind="mc",
                     run=lambda: (1, 0, {}))
    assert case_counters(case) == {}
