"""CLI exit-code contract, cross-checked against the run ledger: the
exit code the process reports and the one the manifest records must
always agree (the determinism canary in CI diffs manifests, so a
mismatch here would poison every downstream comparison)."""

from __future__ import annotations

import pytest

from repro import corpus
from repro.cli import EXIT_CAPPED, EXIT_DEADLINE, main
from repro.obs import ledger


@pytest.fixture()
def ledger_root(tmp_path, monkeypatch):
    root = tmp_path / "runs"
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(root))
    return root


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return str(path)


def _last(ledger_root):
    return ledger.list_runs(ledger_root)[-1]


def _assert_recorded(ledger_root, code, outcome):
    manifest = _last(ledger_root)
    assert manifest["exit_code"] == code
    assert manifest["outcome"] == outcome
    return manifest


# -- analyze: 0 atomic / 1 not shown atomic / 2 usage ------------------------------

def test_analyze_atomic_exits_0(ledger_root, tmp_path, capsys):
    code = main(["analyze", _write(tmp_path, "q.synl",
                                   corpus.NFQ_PRIME)])
    assert code == 0
    _assert_recorded(ledger_root, 0, "ok")


def test_analyze_not_atomic_exits_1(ledger_root, tmp_path, capsys):
    code = main(["analyze", _write(tmp_path, "aba.synl",
                                   corpus.ABA_STACK)])
    assert code == 1
    _assert_recorded(ledger_root, 1, "not-atomic")


def test_analyze_missing_file_exits_2(ledger_root, capsys):
    code = main(["analyze", "/no/such/file.synl"])
    assert code == 2
    _assert_recorded(ledger_root, 2, "error")


# -- mc: 0 clean / 1 violation / 3 capped ------------------------------------------

def test_mc_clean_exits_0(ledger_root, tmp_path, capsys):
    code = main(["mc", _write(tmp_path, "sem.synl", corpus.SEMAPHORE),
                 "Down()", "Up()", "--mode", "full"])
    assert code == 0
    manifest = _assert_recorded(ledger_root, 0, "ok")
    assert manifest["mc"]["violation"] is None


def test_mc_violation_exits_1(ledger_root, tmp_path, capsys):
    code = main(["mc", _write(tmp_path, "sem.synl",
                              corpus.BROKEN_SEMAPHORE),
                 "DownBad()", "DownBad()", "--mode", "full"])
    assert code == 1
    manifest = _assert_recorded(ledger_root, 1, "violation")
    assert manifest["mc"]["fingerprint"]


def test_mc_capped_exits_3(ledger_root, tmp_path, capsys):
    code = main(["mc", _write(tmp_path, "sem.synl",
                              corpus.BROKEN_SEMAPHORE),
                 "DownBad()", "DownBad()", "--mode", "full",
                 "--max-states", "2"])
    assert code == EXIT_CAPPED
    manifest = _assert_recorded(ledger_root, EXIT_CAPPED, "capped")
    assert manifest["mc"]["capped"] is True


def test_mc_deadline_exits_4(ledger_root, tmp_path, capsys):
    # a §6.3-style Gao-Hesselink search is far too big to finish in
    # ~0 seconds, so the soft deadline fires; the stop is graceful —
    # the manifest still carries the partial MC summary
    code = main(["mc", _write(tmp_path, "gh.synl", corpus.GH_PROGRAM1),
                 "Apply(1)", "Apply(2)", "Apply(3)", "--mode", "full",
                 "--deadline", "0"])
    assert code == EXIT_DEADLINE
    assert "UNKNOWN" in capsys.readouterr().out
    manifest = _assert_recorded(ledger_root, EXIT_DEADLINE, "deadline")
    assert manifest["mc"]["deadline_hit"] is True
    assert manifest["mc"]["violation"] is None
    assert manifest["mc"]["states"] >= 1


def test_mc_deadline_violation_still_wins(ledger_root, tmp_path,
                                          capsys):
    # a found violation outranks the deadline verdict
    code = main(["mc", _write(tmp_path, "sem.synl",
                              corpus.BROKEN_SEMAPHORE),
                 "DownBad()", "DownBad()", "--mode", "full",
                 "--deadline", "3600"])
    assert code == 1
    _assert_recorded(ledger_root, 1, "violation")


# -- run: 0 clean / 1 violation ----------------------------------------------------

def test_run_clean_exits_0(ledger_root, tmp_path, capsys):
    code = main(["run", _write(tmp_path, "sem.synl", corpus.SEMAPHORE),
                 "Down()", "Up()"])
    assert code == 0
    manifest = _assert_recorded(ledger_root, 0, "ok")
    assert manifest["seed"] == 0


def test_run_violation_exits_1(ledger_root, tmp_path, capsys):
    code = main(["run", _write(tmp_path, "sem.synl",
                               corpus.BROKEN_SEMAPHORE),
                 "DownBad()", "DownBad()", "--seed", "3"])
    assert code == 1
    manifest = _assert_recorded(ledger_root, 1, "violation")
    assert manifest["seed"] == 3


# -- lint: 0 clean / 2 errors ------------------------------------------------------

def test_lint_clean_exits_0(ledger_root, tmp_path, capsys):
    code = main(["lint", _write(tmp_path, "q.synl",
                                corpus.NFQ_PRIME)])
    assert code == 0
    _assert_recorded(ledger_root, 0, "ok")


def test_lint_errors_exit_2(ledger_root, tmp_path, capsys):
    code = main(["lint", _write(tmp_path, "aba.synl",
                                corpus.ABA_STACK)])
    assert code == 2
    manifest = _assert_recorded(ledger_root, 2, "findings")
    assert manifest["lint"]["errors"] > 0


# -- report / experiments usage errors ---------------------------------------------

def test_report_without_inputs_exits_2(ledger_root, tmp_path,
                                       monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)   # no benchmarks/out fallback here
    code = main(["report"])
    assert code == 2
    _assert_recorded(ledger_root, 2, "error")


def test_report_self_check_exits_0(ledger_root, capsys):
    code = main(["report", "--self-check"])
    assert code == 0
    _assert_recorded(ledger_root, 0, "ok")


def test_experiments_unknown_name_exits_2(ledger_root, capsys):
    code = main(["experiments", "no-such-experiment"])
    assert code == 2
    _assert_recorded(ledger_root, 2, "error")


# -- bench: 0 ok / 1 drift / 2 usage -----------------------------------------------

def test_bench_run_records_ledger_ok(ledger_root, tmp_path, capsys):
    code = main(["bench", "run", "--quick",
                 "--out", str(tmp_path / "out")])
    assert code == 0
    manifest = _assert_recorded(ledger_root, 0, "ok")
    names = {a["name"] for a in manifest["artifacts"]}
    assert {"BENCH_analysis.json", "BENCH_mc.json"} <= names


def test_bench_compare_drift_exits_1(ledger_root, tmp_path, capsys):
    from repro.obs.export import bench_record, write_bench

    def side(wall):
        record = bench_record("mc/x", wall, states=10, transitions=20,
                              stats={"repeats": 3, "min": wall,
                                     "max": wall, "mean": wall,
                                     "median": wall, "iqr": 0.0})
        return [record]

    a, b = tmp_path / "a", tmp_path / "b"
    write_bench(a / "BENCH_mc.json", side(0.1))
    write_bench(b / "BENCH_mc.json", side(0.2))
    code = main(["bench", "compare", str(a), str(b)])
    assert code == 1
    _assert_recorded(ledger_root, 1, "drift")


def test_bench_compare_usage_error_exits_2(ledger_root, tmp_path,
                                           capsys):
    code = main(["bench", "compare", str(tmp_path / "missing"),
                 str(tmp_path / "missing2")])
    assert code == 2
    _assert_recorded(ledger_root, 2, "error")


# -- machine-clean stdout: progress stays on stderr --------------------------------

def test_mc_json_stdout_stays_parseable_with_progress(
        ledger_root, tmp_path, capsys):
    import json

    code = main(["mc", _write(tmp_path, "sem.synl", corpus.SEMAPHORE),
                 "Down()", "Up()", "--mode", "full", "--json",
                 "--progress", "9999"])
    assert code == 0
    captured = capsys.readouterr()
    doc = json.loads(captured.out)       # stdout is ONE JSON document
    assert doc["states"] > 0
    assert "heatmap" in doc


def test_bench_quick_json_stdout_stays_parseable(
        ledger_root, tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_LEDGER", "0")
    code = main(["bench", "run", "--quick", "--json",
                 "--out", str(tmp_path / "out")])
    assert code == 0
    captured = capsys.readouterr()
    doc = json.loads(captured.out)       # heartbeats went to stderr
    assert doc["files"] and doc["entry"]["metrics"]
    assert "[bench]" not in captured.out


# -- perf diff: 0 identical / 1 attributed drift / 2 bad operand -------------------

def _bench_side(tmp_path, name, work):
    from repro.obs.export import bench_record, write_bench

    rec = bench_record("mc/x", 0.1, states=10, transitions=20)
    rec["counters"] = {"mc.successors": {"calls": 0, "work": work}}
    write_bench(tmp_path / name / "BENCH_mc.json", [rec])
    return str(tmp_path / name)


def test_perf_diff_identical_exits_0(ledger_root, tmp_path, capsys):
    a = _bench_side(tmp_path, "a", 1000)
    b = _bench_side(tmp_path, "b", 1000)
    assert main(["perf", "diff", a, b]) == 0
    assert "no attributed drift" in capsys.readouterr().out


def test_perf_diff_drift_exits_1(ledger_root, tmp_path, capsys):
    a = _bench_side(tmp_path, "a", 1000)
    b = _bench_side(tmp_path, "b", 1600)
    assert main(["perf", "diff", a, b]) == 1
    assert "DRIFT" in capsys.readouterr().out


def test_perf_diff_bad_operand_exits_2(ledger_root, tmp_path, capsys):
    a = _bench_side(tmp_path, "a", 1000)
    code = main(["perf", "diff", a, str(tmp_path / "missing")])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_perf_diff_out_written_even_on_drift(ledger_root, tmp_path,
                                             capsys):
    import json

    a = _bench_side(tmp_path, "a", 1000)
    b = _bench_side(tmp_path, "b", 1600)
    out = tmp_path / "deep" / "attribution.json"
    assert main(["perf", "diff", a, b, "--json",
                 "--out", str(out)]) == 1
    doc = json.loads(out.read_text())
    assert doc["drifted"] == ["mc.successors"]
    # stdout stays machine-parseable JSON too
    assert json.loads(capsys.readouterr().out)["drift"] is True


def test_perf_diff_is_not_ledgered(ledger_root, tmp_path, capsys):
    # query commands (runs/graph/perf) must not pollute the ledger
    a = _bench_side(tmp_path, "a", 1000)
    assert main(["perf", "diff", a, a]) == 0
    assert ledger.list_runs(ledger_root) == []


def test_bench_trend_changepoints_stays_informational(
        ledger_root, tmp_path, capsys):
    import json

    walls = [0.0100, 0.0103, 0.0099, 0.0102,
             0.0150, 0.0153, 0.0149, 0.0152]
    history = tmp_path / "BENCH_history.jsonl"
    history.write_text("\n".join(json.dumps(
        {"at": float(i + 1),
         "env": {"git_rev": "abc", "python": "3", "platform": "x",
                 "cpu_count": 1},
         "metrics": {"mc/x": {"wall_s": w, "iqr": 0.0003}}})
        for i, w in enumerate(walls)) + "\n")
    # a detected step is reported but never gates: exit stays 0
    code = main(["bench", "trend", "--history", str(history),
                 "--changepoints"])
    assert code == 0
    assert "[STEP] mc/x wall_s:" in capsys.readouterr().out
