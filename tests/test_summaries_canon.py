"""Canonical procedure hashing and dependency digests
(repro.analysis.summaries.canon): rename tolerance, the
shared-variable near-collision guard, call-graph closures, and the
invalidation rules the incremental engine relies on."""

from __future__ import annotations

from repro.analysis.inference import InferenceOptions
from repro.analysis.summaries import canon
from repro.synl.parser import parse_program
from repro.synl.resolve import resolve


def _program(text: str):
    program = parse_program(text)
    resolve(program)
    return program


def _proc(program, name: str):
    return next(p for p in program.procs if p.name == name)


def _hash(text: str, name: str) -> str:
    return canon.proc_content_hash(_proc(_program(text), name))


BASE = """
global Sem;
proc Down() {
  loop {
    local tmp = LL(Sem) in {
      if (tmp > 0) {
        if (SC(Sem, tmp - 1)) { return; }
      }
    }
  }
}
"""

RENAMED_LOCAL = BASE.replace("tmp", "current")


# -- rename tolerance ----------------------------------------------------------

def test_local_rename_keeps_hash():
    assert _hash(BASE, "Down") == _hash(RENAMED_LOCAL, "Down")


def test_param_rename_keeps_hash():
    a = "global G;\nproc P(x) { G = x; }\n"
    b = "global G;\nproc P(y) { G = y; }\n"
    assert _hash(a, "P") == _hash(b, "P")


def test_whitespace_and_position_keep_hash():
    spaced = "\n\n" + BASE.replace("{\n", "{\n\n")
    assert _hash(BASE, "Down") == _hash(spaced, "Down")


# -- the near-collision guard (satellite: shared-variable identity) ------------

def test_shared_variable_identity_changes_hash():
    # Two procedures whose normalized ASTs differ ONLY in which shared
    # variable they touch: every local binder canonicalizes to the
    # same ordinal, so a hash that also normalized global names would
    # collide these.
    a = ("global A; global B;\n"
         "proc P() { local t = LL(A) in "
         "{ if (SC(A, t + 1)) { return; } } }\n")
    b = ("global A; global B;\n"
         "proc P() { local t = LL(B) in "
         "{ if (SC(B, t + 1)) { return; } } }\n")
    assert _hash(a, "P") != _hash(b, "P")


def test_local_vs_global_same_name_changes_hash():
    # A binder named like a global must not alias it: the VarKind tag
    # is part of the canonical key.
    a = "global X;\nproc P(v) { X = v; }\n"
    b = "global X;\nproc P(X) { X = X; }\n"
    assert _hash(a, "P") != _hash(b, "P")


def test_field_identity_changes_hash():
    a = ("class C { F; G; } global O;\n"
         "proc P() { local t = O in { t.F = 1; } }\n")
    b = ("class C { F; G; } global O;\n"
         "proc P() { local t = O in { t.G = 1; } }\n")
    assert _hash(a, "P") != _hash(b, "P")


def test_body_edit_changes_hash():
    assert _hash(BASE, "Down") != _hash(
        BASE.replace("tmp - 1", "tmp - 2"), "Down")


# -- call graph ----------------------------------------------------------------

CALLS = """
global G; global H;
proc Leaf() { G = 1; }
proc Mid() { Leaf(); }
proc Top() { Mid(); }
proc Solo() { H = 2; }
"""


def test_call_graph_and_closure():
    program = _program(CALLS)
    graph = canon.call_graph(program)
    assert graph["Top"] == {"Mid"}
    assert graph["Mid"] == {"Leaf"}
    assert graph["Solo"] == set()
    assert canon.callee_closure(graph, "Top") == {"Mid", "Leaf"}
    assert canon.callee_closure(graph, "Solo") == set()


def test_effective_hash_folds_in_callees():
    edited = CALLS.replace("G = 1", "G = 3")
    eff_a = canon.effective_hashes(_program(CALLS))
    eff_b = canon.effective_hashes(_program(edited))
    # Editing Leaf flips Leaf, Mid and Top; Solo is untouched.
    assert eff_a["Leaf"] != eff_b["Leaf"]
    assert eff_a["Mid"] != eff_b["Mid"]
    assert eff_a["Top"] != eff_b["Top"]
    assert eff_a["Solo"] == eff_b["Solo"]


# -- dependency digests (the invalidation rules) -------------------------------

def _keys(text: str) -> dict:
    return canon.dependency_digests(_program(text),
                                    InferenceOptions(), text)


def test_callee_edit_invalidates_callers_not_siblings():
    a = _keys(CALLS)
    b = _keys(CALLS.replace("G = 1", "G = 3"))
    assert a["Leaf"] != b["Leaf"]
    assert a["Mid"] != b["Mid"]
    assert a["Top"] != b["Top"]
    # Solo touches only H — no call edge, disjoint footprint.
    assert a["Solo"] == b["Solo"]


def test_interference_overlap_invalidates_without_calls():
    shared = ("global G;\n"
              "proc W() { G = 1; }\n"
              "proc R() { local t = G in { return t; } }\n")
    a = _keys(shared)
    b = _keys(shared.replace("G = 1", "G = 2"))
    # No call edge W->R, but both touch G: the whole-program
    # classification can see W from R, so R must be invalidated too.
    assert a["W"] != b["W"]
    assert a["R"] != b["R"]


def test_interference_reaches_through_callees():
    # A touches G only via its callee B; C touches G with no call
    # edge to either.  Inlining hands B's accesses to A, so editing C
    # must invalidate A (and B) — interference is judged on the
    # effective footprint, not the pre-inline body.  D is disjoint.
    text = ("global G; global H;\n"
            "proc A() { B(); }\n"
            "proc B() { G = 1; }\n"
            "proc C() { G = 2; }\n"
            "proc D() { H = 3; }\n")
    a = _keys(text)
    b = _keys(text.replace("G = 2", "G = 9"))
    assert a["C"] != b["C"]
    assert a["B"] != b["B"]
    assert a["A"] != b["A"]
    assert a["D"] == b["D"]


def test_effective_footprints_fold_in_callees():
    program = _program("global G;\n"
                       "proc A() { B(); }\n"
                       "proc B() { G = 1; }\n")
    own = canon.shared_footprint(_proc(program, "A"))
    assert ("global", "G") not in own
    effective = canon.effective_footprints(program)
    assert ("global", "G") in effective["A"]
    assert effective["A"] == effective["B"]


def test_declaration_edit_invalidates_everyone():
    a = _keys(CALLS)
    b = _keys(CALLS.replace("global G;", "global versioned G;"))
    assert all(a[name] != b[name] for name in a)


def test_suppression_edit_invalidates_only_affected_proc():
    base = ("global Sem;\n"
            "proc Down() {\n"
            "  local t = Sem in { Sem = t - 1; }\n"
            "}\n"
            "proc Up() {\n"
            "  local t = Sem in { Sem = t + 1; }\n"
            "}\n")
    suppressed = base.replace(
        "  local t = Sem in { Sem = t - 1; }",
        "  // lint: ignore[race.unlocked]\n"
        "  local t = Sem in { Sem = t - 1; }")
    a = _keys(base)
    b = _keys(suppressed)
    assert a["Down"] != b["Down"]
    assert a["Up"] == b["Up"]


def test_suppression_slice_is_offset_relative():
    text = ("global G;\n"
            "proc P() {\n"
            "  G = 1; // lint: ignore[race.unlocked]\n"
            "}\n")
    shifted = "\n\n\n" + text
    slice_a = canon.suppression_slice(
        text, _proc(_program(text), "P"))
    slice_b = canon.suppression_slice(
        shifted, _proc(_program(shifted), "P"))
    assert slice_a and slice_a == slice_b


def test_options_change_keys():
    program = _program(CALLS)
    a = canon.dependency_digests(program, InferenceOptions(), CALLS)
    b = canon.dependency_digests(
        program, InferenceOptions(enable_lint=False), CALLS)
    assert all(a[name] != b[name] for name in a)


def test_options_digest_distinguishes_non_bool_values():
    # bool() coercion would collapse e.g. a future int threshold of 1
    # and 2 into the same digest — the key must track raw values
    from types import SimpleNamespace

    a = canon.options_digest(SimpleNamespace(threshold=1))
    b = canon.options_digest(SimpleNamespace(threshold=2))
    c = canon.options_digest(SimpleNamespace(threshold=True))
    assert a != b
    assert a != c


def test_program_key_tracks_source_text():
    options = InferenceOptions()
    assert canon.program_key(CALLS, options) \
        != canon.program_key(CALLS + "\n", options)
    assert canon.program_key(CALLS, options) \
        == canon.program_key(CALLS, InferenceOptions())
