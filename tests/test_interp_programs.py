"""Functional tests of the corpus programs under the interpreter."""

import pytest

from repro import corpus
from repro.interp import Interp, ThreadSpec, run_random, run_round_robin
from repro.interp.values import Ref


def returns(world, proc=None):
    return [e.result for e in world.history
            if e.kind == "return" and (proc is None or e.proc == proc)]


def test_nfq_sequential_fifo():
    interp = Interp(corpus.NFQ)
    world = interp.make_world([ThreadSpec.of(
        ("Enq", 1), ("Enq", 2), ("Enq", 3),
        ("Deq",), ("Deq",), ("Deq",), ("Deq",))])
    run_round_robin(interp, world)
    assert returns(world, "Deq") == [1, 2, 3, -1]


@pytest.mark.parametrize("seed", range(8))
def test_nfq_concurrent_per_thread_fifo(seed):
    interp = Interp(corpus.NFQ)
    world = interp.make_world([
        ThreadSpec.of(("Enq", 1), ("Enq", 2), ("Enq", 3)),
        ThreadSpec.of(("Enq", 10), ("Enq", 20)),
        ThreadSpec.of(*([("Deq",)] * 10)),
    ])
    run_random(interp, world, seed=seed)
    got = [v for v in returns(world, "Deq") if v != -1]
    assert sorted(got) == [1, 2, 3, 10, 20]
    assert [v for v in got if v < 10] == [1, 2, 3]
    assert [v for v in got if v >= 10] == [10, 20]


@pytest.mark.parametrize("seed", range(8))
def test_nfq_prime_with_helper(seed):
    interp = Interp(corpus.NFQ_PRIME)
    world = interp.make_world([
        ThreadSpec.of(("AddNode", 1), ("AddNode", 2)),
        ThreadSpec.of(*([("DeqP",)] * 4)),
        ThreadSpec.of(("UpdateTail",), repeat=True),
    ])
    run_random(interp, world, seed=seed, max_steps=20_000)
    got = [v for v in returns(world, "DeqP") if v != -1]
    assert sorted(got) <= [1, 2]


def test_treiber_stack_lifo():
    interp = Interp(corpus.TREIBER_STACK)
    world = interp.make_world([ThreadSpec.of(
        ("Push", 1), ("Push", 2), ("Push", 3),
        ("Pop",), ("Pop",), ("Pop",), ("Pop",))])
    run_round_robin(interp, world)
    assert returns(world, "Pop") == [3, 2, 1, -1]


@pytest.mark.parametrize("seed", range(6))
def test_treiber_concurrent_no_loss_no_dup(seed):
    interp = Interp(corpus.TREIBER_STACK)
    world = interp.make_world([
        ThreadSpec.of(("Push", 1), ("Push", 2), ("Pop",)),
        ThreadSpec.of(("Push", 3), ("Pop",), ("Pop",), ("Pop",)),
    ])
    run_random(interp, world, seed=seed)
    popped = [v for v in returns(world, "Pop") if v != -1]
    # pops + still-stacked = pushes, no duplicates
    assert len(popped) == len(set(popped))
    assert set(popped) <= {1, 2, 3}


def test_herlihy_applies_all_operations():
    interp = Interp(corpus.HERLIHY_SMALL)
    world = interp.make_world([
        ThreadSpec.of(("Apply", 1), ("Apply", 2)),
        ThreadSpec.of(("Apply", 3),),
    ])
    run_random(interp, world, seed=5)
    obj = world.heap.get(world.globals["Q"])
    # compute(v, x) = v + x + 1 applied for x = 1, 2, 3 in some order
    assert obj.fields["data"] == (1 + 1) + (2 + 1) + (3 + 1)


@pytest.mark.parametrize("seed", range(6))
def test_gh_program1_applies_each_group(seed):
    interp = Interp(corpus.GH_PROGRAM1)
    world = interp.make_world([
        ThreadSpec.of(("Apply", 1)),
        ThreadSpec.of(("Apply", 2)),
        ThreadSpec.of(("Apply", 3)),
    ])
    run_random(interp, world, seed=seed)
    obj = world.heap.get(world.globals["SharedObj"])
    data = world.heap.get(obj.fields["data"])
    # compute(v, g) = v + g + 1 once per group, from 0
    assert data.cells == [0, 2, 3, 4]


def test_semaphore_counts():
    interp = Interp(corpus.SEMAPHORE)
    world = interp.make_world([
        ThreadSpec.of(("Down",), ("Down",), ("Up",)),
    ])
    run_round_robin(interp, world)
    assert world.globals["Sem"] == 1  # 2 - 2 + 1


def test_semaphore_blocks_at_zero():
    interp = Interp(corpus.SEMAPHORE)
    world = interp.make_world([
        ThreadSpec.of(("Down",), ("Down",), ("Down",)),
    ])
    run_round_robin(interp, world, max_steps=500)
    # the third Down spins forever
    assert world.globals["Sem"] == 0
    assert not world.threads[0].done


def test_spin_lock_mutual_exclusion_count():
    interp = Interp(corpus.SPIN_LOCK)
    world = interp.make_world([
        ThreadSpec.of(("Acquire",), ("Release",)),
        ThreadSpec.of(("Acquire",), ("Release",)),
    ])
    run_random(interp, world, seed=3, max_steps=10_000)
    assert world.globals["Lck"] == 0
    assert all(t.done for t in world.threads)


def test_allocator_returns_distinct_blocks():
    interp = Interp(corpus.ALLOCATOR)
    world = interp.make_world([ThreadSpec.of(
        ("MallocFromNewSB",), ("MallocFromActive",),
        ("MallocFromActive",), ("MallocFromActive",))])
    run_round_robin(interp, world)
    blocks = [v for v in returns(world) if v != -1]
    assert len(blocks) == len(set(blocks)) == 4


def test_locked_register_last_write_wins_sequentially():
    interp = Interp(corpus.LOCKED_REGISTER)
    world = interp.make_world([ThreadSpec.of(
        ("Write", 5), ("Write", 9), ("Read",))])
    run_round_robin(interp, world)
    assert returns(world, "Read") == [9]
