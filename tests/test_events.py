"""The structured event stream: ring bounds, schema round-trips, and
the emitters in the explorer, interpreter, scheduler, and dynamic
checker."""

from __future__ import annotations

import io
import json

import pytest

from repro import corpus
from repro.dynamic import TracingInterp
from repro.interp import Interp, ThreadSpec, run_random
from repro.mc import Explorer
from repro.obs.events import (EVENT_SCHEMA, KINDS, EventStream,
                              read_jsonl)
from repro.obs.export import validate
from repro.synl.parser import parse_program
from repro.synl.resolve import resolve


# -- the stream itself -------------------------------------------------------------

def test_emit_stamps_version_seq_and_clock():
    stream = EventStream()
    first = stream.emit("sched.seed", seed=7)
    second = stream.emit("sched.switch", tid=1, prev=0)
    assert first["v"] == 1 and first["seq"] == 0 and first["seed"] == 7
    assert second["seq"] == 1
    assert second["t"] >= first["t"]
    assert len(stream) == stream.emitted == 2
    assert stream.dropped == 0


def test_ring_bounds_and_drop_accounting():
    stream = EventStream(capacity=8)
    for i in range(20):
        stream.emit("mc.pop", depth=i)
    assert len(stream) == 8
    assert stream.emitted == 20
    assert stream.dropped == 12
    depths = [e["depth"] for e in stream.snapshot()]
    assert depths == list(range(12, 20))  # oldest evicted first


def test_snapshot_filters_by_kind():
    stream = EventStream()
    stream.emit("mc.pop", depth=1)
    stream.emit("sched.seed", seed=0)
    stream.emit("mc.pop", depth=0)
    assert [e["depth"] for e in stream.snapshot("mc.pop")] == [1, 0]
    assert stream.snapshot("interp.sc") == []


def test_sink_outlives_ring_eviction():
    sink = io.StringIO()
    stream = EventStream(capacity=2, sink=sink)
    for i in range(5):
        stream.emit("mc.pop", depth=i)
    stream.close()
    lines = [json.loads(l) for l in sink.getvalue().splitlines()]
    assert [e["depth"] for e in lines] == [0, 1, 2, 3, 4]
    assert len(stream) == 2  # ring kept only the tail


def test_jsonl_roundtrip_validates_schema(tmp_path):
    stream = EventStream()
    stream.emit("interp.sc", tid=0, addr="('g', 'Sem')", ok=True)
    stream.emit("mc.violation", desc="t0@9", message="assertion failed")
    path = stream.write_jsonl(tmp_path / "events.jsonl")
    events = read_jsonl(path)
    assert [e["kind"] for e in events] == ["interp.sc", "mc.violation"]
    assert events[0]["ok"] is True


def test_read_jsonl_rejects_unknown_kind(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"v": 1, "seq": 0, "t": 0.0, "kind": "nope"}\n')
    with pytest.raises(ValueError):
        read_jsonl(path)


def test_file_sink_and_context_manager(tmp_path):
    path = tmp_path / "sink.jsonl"
    with EventStream(sink=path) as stream:
        stream.emit("sched.seed", seed=3)
    events = read_jsonl(path)
    assert events[0]["seed"] == 3


def test_every_declared_kind_passes_schema():
    stream = EventStream()
    for kind, fields in KINDS.items():
        event = stream.emit(kind, **{f: 0 for f in fields})
        assert validate(event, EVENT_SCHEMA) == [], kind


# -- emitters ----------------------------------------------------------------------

def test_explorer_emits_push_pop_violation():
    events = EventStream()
    program = parse_program(corpus.BROKEN_SEMAPHORE)
    resolve(program)
    interp = Interp(program, events=events)
    specs = [ThreadSpec.of(("DownBad",)), ThreadSpec.of(("DownBad",))]
    result = Explorer(interp, specs, mode="full",
                      events=events).run()
    assert result.violation
    kinds = {e["kind"] for e in events.snapshot()}
    assert {"mc.push", "mc.pop", "mc.violation"} <= kinds
    (violation,) = events.snapshot("mc.violation")
    assert violation["message"] == result.violation
    pushes = events.snapshot("mc.push")
    assert pushes[0]["states"] >= 1
    assert all(p["depth"] >= 1 for p in pushes)


def test_explorer_emits_ample_in_por_mode():
    events = EventStream()
    interp = Interp(corpus.NFQ_PRIME, events=events)
    specs = [ThreadSpec.of(("AddNode", 1)), ThreadSpec.of(("DeqP",))]
    result = Explorer(interp, specs, mode="por", events=events).run()
    assert result.violation is None
    amples = events.snapshot("mc.ample")
    assert amples and all("tid" in e and "desc" in e for e in amples)


def test_interpreter_emits_sc_events_and_sched_metadata():
    events = EventStream()
    interp = Interp(corpus.SEMAPHORE, events=events)
    world = interp.make_world([ThreadSpec.of(("Down",)),
                               ThreadSpec.of(("Up",))])
    run_random(interp, world, seed=1, events=events)
    (seed_ev,) = events.snapshot("sched.seed")
    assert seed_ev["seed"] == 1
    scs = events.snapshot("interp.sc")
    assert scs and any(e["ok"] for e in scs)
    assert all("Sem" in e["addr"] for e in scs)
    switches = events.snapshot("sched.switch")
    assert switches and switches[0]["prev"] == -1


def test_interpreter_emits_cas_events():
    events = EventStream()
    interp = Interp(corpus.CAS_COUNTER, events=events)
    world = interp.make_world([ThreadSpec.of(("Inc",))])
    run_random(interp, world, seed=0, events=events)
    cas = events.snapshot("interp.cas")
    assert cas and cas[-1]["ok"] is True


def test_dynamic_checker_emits_invocations_and_verdicts():
    events = EventStream()
    interp = TracingInterp(corpus.SEMAPHORE, events=events)
    world = interp.make_world([ThreadSpec.of(("Down",)),
                               ThreadSpec.of(("Up",))])
    run_random(interp, world, seed=0, events=events)
    interp.checker.verdicts()
    invocations = events.snapshot("dyn.invocation")
    assert {e["proc"] for e in invocations} == {"Down", "Up"}
    verdicts = events.snapshot("dyn.verdict")
    assert {e["proc"] for e in verdicts} == {"Down", "Up"}
    assert all(isinstance(e["atomic"], bool) for e in verdicts)


def test_run_path_log_matches_schema():
    from repro.obs.export import PATH_STEP_SCHEMA

    interp = Interp(corpus.SEMAPHORE)
    world = interp.make_world([ThreadSpec.of(("Down",))])
    path_log: list = []
    run_random(interp, world, seed=0, path_log=path_log)
    assert path_log and path_log[0]["kind"] == "invoke"
    for step in path_log:
        assert validate(step, PATH_STEP_SCHEMA) == []
    assert any(s["kind"] == "stmt" and s["uid"] is not None
               for s in path_log)


# -- sink paths with missing parent directories ------------------------------------

def test_sink_creates_missing_parent_dirs(tmp_path):
    sink = tmp_path / "deep" / "nested" / "events.jsonl"
    with EventStream(sink=sink) as stream:
        stream.emit("sched.seed", seed=1)
    assert len(read_jsonl(sink)) == 1


def test_write_jsonl_creates_missing_parent_dirs(tmp_path):
    stream = EventStream()
    stream.emit("mc.pop", depth=0)
    path = stream.write_jsonl(tmp_path / "a" / "b" / "events.jsonl")
    assert len(read_jsonl(path)) == 1


def test_write_trace_creates_missing_parent_dirs(tmp_path):
    from repro.obs.chrometrace import write_trace

    stream = EventStream()
    stream.emit("mc.pop", depth=0)
    path = write_trace(tmp_path / "x" / "y" / "trace.json",
                       events=stream)
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


def test_cli_events_and_trace_out_create_parent_dirs(tmp_path):
    from repro.cli import main

    src = tmp_path / "sem.synl"
    src.write_text(corpus.SEMAPHORE)
    events_out = tmp_path / "out" / "sub" / "events.jsonl"
    trace_out = tmp_path / "out" / "other" / "trace.json"
    code = main(["run", str(src), "Down()", "Up()",
                 "--events-out", str(events_out),
                 "--trace-out", str(trace_out)])
    assert code == 0
    assert events_out.is_file() and read_jsonl(events_out)
    assert json.loads(trace_out.read_text())["traceEvents"]


def test_drain_returns_bounded_most_recent():
    stream = EventStream(capacity=16)
    for i in range(10):
        stream.emit("mc.pop", depth=i)
    tail = stream.drain(3)
    assert [e["depth"] for e in tail] == [7, 8, 9]
    assert len(stream.drain()) == 10
    assert len(stream.drain(100)) == 10


def test_active_registry_tracks_latest_stream():
    import gc

    from repro.obs import events as events_mod

    first = EventStream()
    assert events_mod.active() is first
    second = EventStream()
    assert events_mod.active() is second
    del second
    gc.collect()
    # weakref registry: a collected stream must not be kept alive
    assert events_mod.active() is None


# -- graph / deadline kinds (state-space introspection) ----------------------------

def test_deadline_events_roundtrip_jsonl(tmp_path):
    # mc.deadline is a declared kind: a sink file from a deadline-hit
    # run must load back through the validating reader
    path = tmp_path / "ev.jsonl"
    with EventStream(sink=path) as stream:
        stream.emit("mc.deadline", states=12, deadline_s=0.5)
    events = read_jsonl(path)
    assert [e["kind"] for e in events] == ["mc.deadline"]


def test_graph_writer_emits_mc_graph_event(tmp_path):
    from repro.obs.graph import GraphWriter

    stream = EventStream()
    writer = GraphWriter(tmp_path / "g.jsonl", mode="full", threads=2,
                         events=stream)
    writer.node((("init",), ()), 1, init=True)
    writer.edge("aa", (("next",), ()), tid=0, uid=1, op="stmt",
                dup=False)
    writer.close()
    (event,) = stream.snapshot("mc.graph")
    assert event["nodes"] == 1 and event["edges"] == 1
    assert event["path"].endswith("g.jsonl")
    assert not event["truncated"]
    # bounded drain keeps the newest records, graph event included
    assert stream.drain(1)[0]["kind"] == "mc.graph"


def test_final_progress_beat_carries_extended_fields():
    events = EventStream()
    interp = Interp(corpus.SEMAPHORE)
    specs = [ThreadSpec.of(("Down",)), ThreadSpec.of(("Up",))]
    Explorer(interp, specs, mode="full", events=events,
             progress=9999).run()
    beats = events.snapshot("explorer.progress")
    assert beats, "a final heartbeat must always be emitted"
    final = beats[-1]
    assert final["final"] is True
    assert 0.0 <= final["dedup_hit_rate"] <= 1.0
    assert final["mem_mb"] > 0
