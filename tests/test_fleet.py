"""The multi-process observability backplane (:mod:`repro.obs.fleet`):
merge algebra (associative / commutative / identity), spool write-out
and torn-line-tolerant read-back, the fork-based ``run_fleet`` fan-out
with submission-order reassembly, and ``--jobs`` resolution."""

from __future__ import annotations

import json
import random

import pytest

from repro.obs import fleet
from repro.obs.events import read_jsonl
from repro.obs.fleet import (
    WorkerSpool,
    merge_spools,
    read_spool_events,
    resolve_jobs,
    run_fleet,
    worker_name,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import Profiler


# -- merge algebra -----------------------------------------------------------------
#
# Property-style over seeded random instrument populations: a fleet
# merge must not depend on worker completion order (commutativity),
# on the merge tree shape (associativity), or on empty workers being
# present (identity).  All three are checked through the raw `state()`
# transport shape — the exact bytes that cross the process boundary.

def _random_registry(rng: random.Random) -> MetricsRegistry:
    reg = MetricsRegistry()
    for name in rng.sample(["a", "b", "c", "d", "e"],
                           rng.randint(0, 5)):
        reg.inc(f"count.{name}", rng.randint(1, 100))
    for name in rng.sample(["x", "y", "z"], rng.randint(0, 3)):
        reg.set(f"peak.{name}", rng.randint(0, 50))
    for name in rng.sample(["h", "i"], rng.randint(0, 2)):
        for _ in range(rng.randint(1, 20)):
            reg.observe(f"hist.{name}", rng.uniform(0.001, 40.0))
    return reg


def _merged(*regs: MetricsRegistry) -> dict:
    out = MetricsRegistry()
    for reg in regs:
        out.merge(reg)
    return out.state()


def _copy(reg: MetricsRegistry) -> MetricsRegistry:
    return MetricsRegistry.from_state(reg.state())


def test_counter_merge_adds_and_identity():
    a, b, zero = Counter(), Counter(), Counter()
    a.inc(3)
    b.inc(4)
    a.merge(b)
    assert a.value == 7
    a.merge(zero)
    assert a.value == 7


def test_gauge_merge_is_max_of_set_and_unset_is_identity():
    lo, hi, unset = Gauge(), Gauge(), Gauge()
    lo.set(2)
    hi.set(9)
    lo.merge(hi)
    assert lo.value == 9
    # unset gauge is the identity in either direction — including an
    # unset gauge whose default 0 would otherwise beat a set negative
    neg = Gauge()
    neg.set(-3)
    neg.merge(unset)
    assert neg.value == -3 and neg._set
    absorbed = Gauge()
    absorbed.merge(neg)
    assert absorbed.value == -3 and absorbed._set


def test_histogram_merge_equals_single_stream():
    rng = random.Random(7)
    xs = [rng.uniform(0.01, 30.0) for _ in range(40)]
    one = Histogram()
    for x in xs:
        one.observe(x)
    left, right = Histogram(), Histogram()
    for x in xs[:17]:
        left.observe(x)
    for x in xs[17:]:
        right.observe(x)
    left.merge(right)
    merged, single = left.state(), one.state()
    # total is a float sum: merge order may differ in the last ulp
    assert merged.pop("total") == pytest.approx(single.pop("total"))
    assert merged == single
    assert left.percentile(0.5) == one.percentile(0.5)
    assert left.percentile(0.95) == one.percentile(0.95)
    assert (left.count, left.min, left.max) \
        == (one.count, one.min, one.max)


def test_registry_merge_commutative():
    for seed in range(6):
        rng = random.Random(seed)
        a, b = _random_registry(rng), _random_registry(rng)
        assert _merged(_copy(a), _copy(b)) \
            == _merged(_copy(b), _copy(a)), f"seed {seed}"


def test_registry_merge_associative():
    for seed in range(6):
        rng = random.Random(100 + seed)
        a, b, c = (_random_registry(rng) for _ in range(3))
        ab = _copy(a)
        ab.merge(_copy(b))
        ab.merge(_copy(c))                 # (a + b) + c
        bc = _copy(b)
        bc.merge(_copy(c))
        a2 = _copy(a)
        a2.merge(bc)                       # a + (b + c)
        assert ab.state() == a2.state(), f"seed {seed}"


def test_registry_merge_identity():
    rng = random.Random(42)
    a = _random_registry(rng)
    assert _merged(_copy(a), MetricsRegistry()) == a.state()
    assert _merged(MetricsRegistry(), _copy(a)) == a.state()


def test_registry_state_roundtrip_merges_losslessly():
    rng = random.Random(9)
    a = _random_registry(rng)
    via_json = MetricsRegistry.from_state(
        json.loads(json.dumps(a.state())))
    assert via_json.state() == a.state()
    assert via_json.snapshot() == a.snapshot()


def test_profiler_merge_associative_commutative_identity():
    def prof(spec):
        p = Profiler()
        for name, work in spec:
            with p.region(name):
                p.add(name + ".inner", work)
        return p

    a = lambda: prof([("alpha", 3), ("beta", 1)])          # noqa: E731
    b = lambda: prof([("beta", 2)])                        # noqa: E731
    c = lambda: prof([("gamma", 5), ("alpha", 1)])         # noqa: E731

    def counters(*profs):
        out = Profiler()
        for p in profs:
            out.merge(p)
        return out.counters()

    assert counters(a(), b(), c()) == counters(c(), b(), a())
    ab = a()
    ab.merge(b())
    ab.merge(c())
    bc = b()
    bc.merge(c())
    a2 = a()
    a2.merge(bc)
    assert ab.counters() == a2.counters()
    assert counters(a(), Profiler()) == counters(a())
    via_json = Profiler.from_state(json.loads(json.dumps(a().state())))
    assert via_json.counters() == a().counters()


# -- resolve_jobs ------------------------------------------------------------------

def test_resolve_jobs_flag_beats_env_beats_default():
    assert resolve_jobs(3, env={"REPRO_JOBS": "8"}) == 3
    assert resolve_jobs(None, env={"REPRO_JOBS": "8"}) == 8
    assert resolve_jobs(None, env={}) == 1
    assert resolve_jobs(None, env={"REPRO_JOBS": "junk"}) == 1
    assert resolve_jobs(0, env={}) == 1          # clamp
    assert resolve_jobs(None, env={"REPRO_JOBS": "-2"}) == 1


def test_worker_name_is_zero_padded():
    assert worker_name(0) == "worker-00"
    assert worker_name(11) == "worker-11"


# -- spool write / read ------------------------------------------------------------

def test_worker_spool_writes_layout_and_stamps(tmp_path):
    spool = WorkerSpool(tmp_path, 1)
    spool.heartbeat(done=0, total=2)
    spool.metrics.inc("fleet.test", 5)
    with spool.profiler.region("fleet.region"):
        pass
    spool.heartbeat(done=2)
    spool.finish(result={"ok": True, "values": [1, 2]})

    wdir = tmp_path / "worker-01"
    events = read_spool_events(wdir / "events.jsonl")
    assert [e["kind"] for e in events] == ["fleet.heartbeat"] * 3
    assert events[-1]["final"] is True
    assert all(e["worker"] == "worker-01" for e in events)
    assert all(e["pid"] == spool.pid for e in events)
    # a spooled stream must satisfy the strict substrate reader too
    assert len(read_jsonl(wdir / "events.jsonl")) == 3

    meta = json.loads((wdir / "worker.json").read_text())
    assert meta["worker"] == "worker-01" and meta["items"] == 2
    metrics = MetricsRegistry.from_state(
        json.loads((wdir / "metrics.json").read_text())["metrics"])
    assert metrics.snapshot()["fleet.test"] == 5
    profile = json.loads((wdir / "profile.json").read_text())["profile"]
    assert "fleet.region" in profile["entries"]
    assert json.loads((wdir / "result.json").read_text())["ok"] is True


def test_read_spool_events_tolerates_torn_and_missing(tmp_path):
    assert read_spool_events(tmp_path / "absent.jsonl") == []
    path = tmp_path / "events.jsonl"
    path.write_text('{"kind": "fleet.heartbeat", "done": 1}\n'
                    '\n'
                    '{"kind": "fleet.hear')       # torn mid-write
    events = read_spool_events(path)
    assert len(events) == 1 and events[0]["done"] == 1


def test_merge_spools_rows_straggler_and_event_order(tmp_path):
    for index, (n, wall) in enumerate([(2, 0.1), (3, 0.9)]):
        spool = WorkerSpool(tmp_path, index)
        for done in range(1, n + 1):
            spool.heartbeat(done=done, total=n)
        spool.metrics.inc("merged.count", n)
        spool.finish(result={"ok": True, "values": list(range(n))})
        # pin wall_s so the straggler pick is deterministic
        meta_path = tmp_path / worker_name(index) / "worker.json"
        meta = json.loads(meta_path.read_text())
        meta["wall_s"] = wall
        meta_path.write_text(json.dumps(meta))

    merge = merge_spools(tmp_path, label="unit", jobs=2)
    doc = merge.doc
    assert doc["kind"] == "fleet" and doc["jobs"] == 2
    assert doc["label"] == "unit"
    assert doc["items"] == 5
    assert doc["straggler"] == "worker-01"
    assert doc["wall_s"] == 0.9
    assert [r["worker"] for r in doc["workers"]] \
        == ["worker-00", "worker-01"]
    assert merge.metrics.snapshot()["merged.count"] == 5
    # events ordered by (worker, seq): stable under completion order
    keys = [(e["worker"], e["seq"]) for e in merge.events.snapshot()]
    assert keys == sorted(keys)
    assert merge.results[0]["values"] == [0, 1]


# -- run_fleet ---------------------------------------------------------------------

def _square(item, spool):
    spool.metrics.inc("fleet.squares")
    with spool.profiler.region("fleet.square"):
        pass
    spool.events.emit("fleet.heartbeat", done=item)
    return item * item


def test_run_fleet_reassembles_in_submission_order(tmp_path):
    items = list(range(7))
    values, merge = run_fleet(items, _square, jobs=3,
                              spool=tmp_path, label="squares")
    assert values == [i * i for i in items]
    assert merge.doc["items"] == 7
    assert merge.doc["jobs"] == 3
    assert len(merge.doc["workers"]) == 3
    assert merge.metrics.snapshot()["fleet.squares"] == 7
    assert merge.profiler.counters()["fleet.square"]["calls"] == 7
    # pid/worker stamped on every merged event; >1 distinct pid when
    # the platform actually forked
    events = merge.events.snapshot()
    assert all("pid" in e and "worker" in e for e in events)
    if fleet.can_fork():
        assert len({e["pid"] for e in events}) == 3


def test_run_fleet_matches_sequential_map(tmp_path):
    items = ["a", "bb", "ccc"]

    def measure(item, spool):
        return len(item)

    values, _ = run_fleet(items, measure, jobs=2,
                          spool=tmp_path / "s1")
    assert values == [len(i) for i in items]
    solo, _ = run_fleet(items, measure, jobs=1,
                        spool=tmp_path / "s2")
    assert solo == values


def test_run_fleet_clamps_jobs_to_items(tmp_path):
    values, merge = run_fleet([5], _square, jobs=4, spool=tmp_path)
    assert values == [25]
    assert len(merge.doc["workers"]) == 1


def test_run_fleet_rejects_bad_jobs(tmp_path):
    with pytest.raises(ValueError):
        run_fleet([1], _square, jobs=0, spool=tmp_path)


def test_run_fleet_worker_failure_spools_traceback(tmp_path):
    def boom(item, spool):
        if item == 2:
            raise RuntimeError("injected fleet failure")
        return item

    with pytest.raises(RuntimeError) as err:
        run_fleet([0, 1, 2, 3], boom, jobs=2, spool=tmp_path)
    message = str(err.value)
    assert "injected fleet failure" in message
    assert "worker-" in message
    # the healthy worker's spool survived for post-mortem
    merge = merge_spools(tmp_path)
    assert any(r and r.get("ok") for r in merge.results)


def test_run_fleet_exports_fleet_env_to_workers(tmp_path):
    import os

    def peek(item, spool):
        return {"worker": os.environ.get(fleet.ENV_WORKER),
                "spool": os.environ.get(fleet.ENV_SPOOL)}

    values, _ = run_fleet([0, 1], peek, jobs=2, spool=tmp_path)
    assert values[0]["worker"] == "worker-00"
    assert values[1]["worker"] == "worker-01"
    assert all(v["spool"] == str(tmp_path) for v in values)


def test_default_spool_root_follows_ledger(tmp_path, monkeypatch):
    from repro.obs import ledger

    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / ".repro/runs"))
    # without a live recorder: pid-scoped sibling directory
    root = fleet.default_spool_root()
    assert root.parent.name == "spool"
    recorder = ledger.start([], "unit-test",
                            root=tmp_path / ".repro/runs",
                            persist=False, force=True)
    try:
        assert fleet.default_spool_root() == recorder.run_dir / "spool"
    finally:
        ledger.stop(recorder)
