"""Heap/value unit tests and the experiments Table renderer."""

import pytest

from repro.errors import InterpError, SourcePos, SynlError
from repro.experiments.common import Table, ratio
from repro.interp.values import (Heap, HeapArray, HeapObject, Ref,
                                 default_primitives)


# -- heap ---------------------------------------------------------------------------

def test_alloc_returns_distinct_refs():
    heap = Heap()
    a, b = heap.alloc("C"), heap.alloc("C")
    assert a != b
    assert isinstance(heap.get(a), HeapObject)


def test_field_read_write_roundtrip():
    heap = Heap()
    r = heap.alloc("C")
    heap.write_field(r, "fd", 42)
    assert heap.read_field(r, "fd") == 42
    assert heap.read_field(r, "other") is None  # unset -> null


def test_array_alloc_zero_filled_and_bounds():
    heap = Heap()
    a = heap.alloc_array("int", 3)
    assert heap.read_elem(a, 2) == 0
    heap.write_elem(a, 0, 9)
    assert heap.read_elem(a, 0) == 9
    with pytest.raises(InterpError, match="bounds"):
        heap.read_elem(a, 3)
    with pytest.raises(InterpError, match="bounds"):
        heap.write_elem(a, -1, 0)


def test_negative_array_size_rejected():
    with pytest.raises(InterpError, match="negative"):
        Heap().alloc_array("int", -1)


def test_non_integer_index_rejected():
    heap = Heap()
    a = heap.alloc_array("int", 2)
    with pytest.raises(InterpError, match="index"):
        heap.read_elem(a, True)  # booleans are not indices


def test_field_access_on_array_rejected():
    heap = Heap()
    a = heap.alloc_array("int", 2)
    with pytest.raises(InterpError):
        heap.read_field(a, "fd")


def test_dereference_non_ref_rejected():
    with pytest.raises(InterpError, match="non-reference"):
        Heap().get(42)


def test_dangling_reference_rejected():
    with pytest.raises(InterpError, match="dangling"):
        Heap().get(Ref(99))


def test_heap_copy_is_deep():
    heap = Heap()
    r = heap.alloc("C")
    heap.write_field(r, "fd", 1)
    clone = heap.copy()
    clone.write_field(r, "fd", 2)
    assert heap.read_field(r, "fd") == 1
    # allocation counters continue without collision
    r2 = clone.alloc("C")
    assert r2.oid != r.oid


def test_default_primitives_packing_laws():
    prims = default_primitives()
    packed = prims["packactive"](3, 2)
    assert prims["sbof"](packed) == 3
    assert prims["creditsof"](packed) == 2
    anchor = 5 * 64 + 4
    assert prims["availof"](anchor) == 5
    assert prims["countof"](anchor) == 4
    popped = prims["popanchor"](anchor, 6, 2)
    assert prims["availof"](popped) == 6
    assert prims["countof"](popped) == 4


# -- errors ---------------------------------------------------------------------------

def test_source_pos_renders_and_orders():
    assert str(SourcePos(3, 7)) == "3:7"
    assert SourcePos(1, 9) < SourcePos(2, 1)


def test_synl_error_prefixes_position():
    err = SynlError("bad thing", SourcePos(4, 2))
    assert str(err).startswith("4:2:")
    assert SynlError("no pos").args[0] == "no pos"


# -- experiments table --------------------------------------------------------------------

def test_table_render_alignment_and_notes():
    table = Table("Title", ["col", "value"])
    table.add("short", 1)
    table.add("a-much-longer-row", 123456)
    table.note("a note")
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "Title"
    header, sep, row1, row2, note = lines[2:]
    assert header.index("value") == row1.index("1")
    assert "a-much-longer-row" in row2
    assert note.strip() == "note: a note"


def test_ratio_formatting():
    assert ratio(100, 4) == "25.0x"
    assert ratio(1, 0) == "inf"
