"""``repro top`` dashboard: event folding, depth percentiles, the
torn-line-safe tail reader, and the no-TTY / ``--once`` CLI modes."""

from __future__ import annotations

import io
import json

from repro import corpus
from repro.cli import main
from repro.obs.top import (FleetTail, TopState, _Tail, render_frame,
                           render_fleet_frame, render_fleet_line,
                           render_line, run_top)


def _beat(seq, states, elapsed, **extra):
    return {"v": 1, "seq": seq, "t": elapsed,
            "kind": "explorer.progress", "states": states,
            "transitions": states * 2, "depth": 4, "frontier": 3,
            "elapsed_s": elapsed, **extra}


# -- state folding -----------------------------------------------------------------

def test_feed_progress_refreshes_and_tracks_rate():
    state = TopState()
    assert state.status == "waiting"
    assert state.feed(_beat(0, 100, 1.0)) is True
    assert state.status == "running"
    assert state.feed(_beat(1, 300, 2.0)) is True
    assert state.ewma_rate > 0
    assert state.peak_rate >= state.ewma_rate
    assert state.beats == 2 and state.events == 2


def test_feed_terminal_events_flip_status():
    state = TopState()
    state.feed(_beat(0, 10, 1.0))
    state.feed({"kind": "mc.violation", "message": "assert failed"})
    assert state.status.startswith("VIOLATION")

    state = TopState()
    state.feed({"kind": "mc.cap", "states": 500})
    assert state.status == "CAPPED at 500 states"

    state = TopState()
    state.feed({"kind": "mc.deadline", "states": 9, "deadline_s": 1})
    assert state.status.startswith("DEADLINE")

    state = TopState()
    state.feed(_beat(0, 10, 1.0))
    state.feed(_beat(1, 20, 2.0, final=True))
    assert state.status == "done"


def test_feed_graph_event_lands_in_frame():
    state = TopState()
    state.feed(_beat(0, 10, 1.0))
    state.feed({"kind": "mc.graph", "nodes": 7, "edges": 9,
                "pruned": 2, "truncated": False, "path": "g.jsonl"})
    frame = "\n".join(render_frame(state, "ev.jsonl"))
    assert "7 nodes, 9 edges, 2 pruned" in frame


def test_depth_percentiles():
    state = TopState()
    for depth, n in [(1, 50), (2, 40), (3, 9), (9, 1)]:
        for _ in range(n):
            state.feed({"kind": "mc.push", "depth": depth})
    p50, p95, dmax = state.depth_percentiles()
    assert (p50, p95, dmax) == (1, 3, 9)
    assert TopState().depth_percentiles() == (0, 0, 0)


def test_to_dict_roundtrips_to_json():
    state = TopState()
    state.feed(_beat(0, 10, 1.0, dedup_hit_rate=0.25, mem_mb=40.0))
    doc = json.loads(json.dumps(state.to_dict()))
    assert doc["status"] == "running"
    assert doc["progress"]["dedup_hit_rate"] == 0.25


def test_render_line_and_frame_smoke():
    state = TopState()
    state.feed(_beat(0, 1234, 1.0, dedup_hit_rate=0.1, mem_mb=33.0,
                     eta_cap_s=4.5, deadline_in_s=10.0))
    line = render_line(state)
    assert "states=1234" in line
    frame = "\n".join(render_frame(state, "ev.jsonl"))
    assert "ETA to cap" in frame and "deadline in" in frame


# -- tail reader -------------------------------------------------------------------

def test_tail_survives_torn_lines(tmp_path):
    path = tmp_path / "ev.jsonl"
    tail = _Tail(str(path))
    assert tail.poll() == []              # file does not exist yet
    path.write_text('{"kind": "mc.push", "depth": 1}\n{"kind": "mc.')
    first = tail.poll()
    assert [e["kind"] for e in first] == ["mc.push"]
    with open(path, "a") as fh:           # writer finishes the line
        fh.write('pop", "depth": 1}\n')
    second = tail.poll()
    assert [e["kind"] for e in second] == ["mc.pop"]
    tail.close()


# -- run_top / CLI -----------------------------------------------------------------

def _events_file(tmp_path, events):
    path = tmp_path / "ev.jsonl"
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    return path


def test_run_top_once_without_tty(tmp_path):
    path = _events_file(tmp_path, [_beat(0, 10, 1.0),
                                   _beat(1, 30, 2.0, final=True)])
    out = io.StringIO()
    assert run_top(str(path), once=True, out=out) == 0
    text = out.getvalue()
    assert "repro top" in text and "status: done" in text


def test_run_top_once_without_heartbeats_explains(tmp_path):
    path = _events_file(tmp_path, [{"kind": "mc.push", "depth": 1}])
    out = io.StringIO()
    assert run_top(str(path), once=True, out=out) == 0
    assert "no heartbeats recorded" in out.getvalue()


def test_run_top_empty_file_exits_2(tmp_path):
    path = tmp_path / "missing.jsonl"
    out = io.StringIO()
    assert run_top(str(path), once=True, out=out) == 2


def test_run_top_line_mode_ends_on_final(tmp_path):
    path = _events_file(tmp_path, [_beat(0, 10, 1.0),
                                   _beat(1, 30, 2.0, final=True)])
    out = io.StringIO()
    code = run_top(str(path), interval=0.01, duration=5.0, out=out,
                   force_tty=False)
    assert code == 0
    assert "[top] done" in out.getvalue()


def test_run_top_tty_repaints_in_place(tmp_path):
    path = _events_file(tmp_path, [_beat(0, 10, 1.0),
                                   _beat(1, 30, 2.0, final=True)])
    out = io.StringIO()
    assert run_top(str(path), interval=0.01, duration=5.0, out=out,
                   force_tty=True) == 0
    assert "\x1b[" in out.getvalue()      # ANSI cursor repaint


def test_cli_top_once_json_from_real_mc_run(tmp_path, capsys):
    prog = tmp_path / "p.synl"
    prog.write_text(corpus.SEMAPHORE)
    events = tmp_path / "ev.jsonl"
    assert main(["mc", str(prog), "Down()", "Up()", "--mode", "full",
                 "--progress", "9999",
                 "--events-out", str(events)]) == 0
    capsys.readouterr()
    assert main(["top", str(events), "--once", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["beats"] >= 1              # the final heartbeat
    assert doc["progress"]["states"] > 0


# -- fleet spool directories -------------------------------------------------------

def _fleet_beat(seq, done, total, elapsed, **extra):
    return {"v": 1, "seq": seq, "t": elapsed,
            "kind": "fleet.heartbeat", "done": done, "total": total,
            "rate": done / elapsed if elapsed else 0.0,
            "rss_mb": 30.0, "elapsed_s": elapsed, **extra}


def _spool_worker(root, index, beats):
    wdir = root / f"worker-{index:02d}"
    wdir.mkdir(parents=True, exist_ok=True)
    path = wdir / "events.jsonl"
    with open(path, "a") as fh:
        for beat in beats:
            fh.write(json.dumps({"worker": wdir.name,
                                 "pid": 4240 + index, **beat}) + "\n")
    return path


def test_fleet_tail_folds_workers_and_survives_torn_line(tmp_path):
    _spool_worker(tmp_path, 0, [_fleet_beat(0, 1, 4, 1.0)])
    ev1 = _spool_worker(tmp_path, 1, [_fleet_beat(0, 2, 4, 1.0)])
    with open(ev1, "a") as fh:            # writer mid-write on poll
        fh.write('{"kind": "fleet.hear')
    fleet = FleetTail(str(tmp_path))
    assert fleet.poll() is True
    assert sorted(fleet.states) == ["worker-00", "worker-01"]
    assert fleet.events == 2              # torn line not counted
    assert fleet.aggregate()["done"] == 3
    with open(ev1, "a") as fh:            # line completes next poll
        fh.write('tbeat", "done": 3, "seq": 1, "elapsed_s": 2.0}\n')
    assert fleet.poll() is True
    assert fleet.aggregate()["done"] == 4
    fleet.close()


def test_fleet_tail_reglobs_late_workers(tmp_path):
    _spool_worker(tmp_path, 0, [_fleet_beat(0, 1, 2, 1.0)])
    fleet = FleetTail(str(tmp_path))
    fleet.poll()
    assert sorted(fleet.states) == ["worker-00"]
    # a worker that spools up after the first poll is still picked up
    _spool_worker(tmp_path, 1, [_fleet_beat(0, 1, 2, 1.5)])
    assert fleet.poll() is True
    assert sorted(fleet.states) == ["worker-00", "worker-01"]
    fleet.close()


def test_fleet_tail_finished_requires_all_final(tmp_path):
    _spool_worker(tmp_path, 0, [_fleet_beat(0, 2, 2, 1.0, final=True)])
    _spool_worker(tmp_path, 1, [_fleet_beat(0, 1, 2, 1.0)])
    fleet = FleetTail(str(tmp_path))
    fleet.poll()
    assert fleet.finished() is False
    _spool_worker(tmp_path, 1, [_fleet_beat(1, 2, 2, 2.0, final=True)])
    fleet.poll()
    assert fleet.finished() is True
    frame = "\n".join(render_fleet_frame(fleet, str(tmp_path)))
    assert "worker-00" in frame and "worker-01" in frame
    assert "TOTAL" in frame
    line = render_fleet_line(fleet)
    assert "workers=2" in line and "running=0" in line
    fleet.close()


def test_run_top_on_spool_dir_once(tmp_path):
    _spool_worker(tmp_path, 0, [_fleet_beat(0, 4, 4, 1.0, final=True)])
    _spool_worker(tmp_path, 1, [_fleet_beat(0, 3, 4, 1.2, final=True)])
    out = io.StringIO()
    assert run_top(str(tmp_path), once=True, out=out) == 0
    text = out.getvalue()
    assert "fleet" in text and "worker-00" in text \
        and "worker-01" in text and "TOTAL" in text


def test_run_top_on_spool_dir_json(tmp_path):
    _spool_worker(tmp_path, 0, [_fleet_beat(0, 4, 4, 1.0, final=True)])
    out = io.StringIO()
    assert run_top(str(tmp_path), once=True, as_json=True,
                   out=out) == 0
    doc = json.loads(out.getvalue())
    assert doc["aggregate"]["workers"] == 1
    assert doc["workers"]["worker-00"]["status"] == "done"


def test_run_top_on_empty_spool_dir_exits_2(tmp_path):
    out = io.StringIO()
    assert run_top(str(tmp_path), once=True, out=out) == 2


def test_run_top_fleet_line_mode_ends_when_all_final(tmp_path):
    _spool_worker(tmp_path, 0, [_fleet_beat(0, 2, 2, 1.0, final=True)])
    _spool_worker(tmp_path, 1, [_fleet_beat(0, 2, 2, 1.1, final=True)])
    out = io.StringIO()
    code = run_top(str(tmp_path), interval=0.01, duration=5.0,
                   out=out, force_tty=False)
    assert code == 0
    assert "[top] fleet workers=2" in out.getvalue()


def test_cli_top_on_live_fleet_spool(tmp_path, capsys):
    from repro.obs.fleet import run_fleet

    def work(item, spool):
        return item + 1

    run_fleet([1, 2, 3], work, jobs=2, spool=tmp_path / "spool")
    assert main(["top", str(tmp_path / "spool"), "--once",
                 "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["aggregate"]["workers"] == 2
    assert all(w["status"] == "done"
               for w in doc["workers"].values())
