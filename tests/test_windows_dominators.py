"""Window machinery (Thms 5.3/5.4) and dominator computation."""

from repro.analysis.windows import WindowIndex
from repro.cfg import NodeKind, build_cfg
from repro.cfg.dominators import Dominators
from repro.synl.resolve import load_program


def _setup(source, proc="P", cas_ok=lambda root: True):
    prog = load_program(source)
    cfg = build_cfg(prog.proc(proc))
    dom = Dominators(cfg)
    return cfg, dom, WindowIndex(cfg, dom, cas_ok)


VARIANT = """
global Tail;
class Node { Next; }
proc P(node) {
  local t = LL(Tail) in
  local next = LL(t.Next) in {
    TRUE(VL(Tail));
    TRUE(next == null);
    TRUE(SC(t.Next, node));
    return;
  }
}
"""


def _assumes(cfg):
    from repro.synl import ast as A

    return [n for n in cfg.nodes
            if n.kind is NodeKind.STMT and isinstance(n.stmt, A.Assume)]


def test_windows_built_for_vl_and_sc():
    cfg, dom, windows = _setup(VARIANT)
    kinds = sorted(w.kind for w in windows.windows)
    assert kinds == ["SC", "VL"]


def test_window_endpoints():
    cfg, dom, windows = _setup(VARIANT)
    sc = next(w for w in windows.windows if w.kind == "SC")
    vl = next(w for w in windows.windows if w.kind == "VL")
    binds = [n for n in cfg.nodes if n.kind is NodeKind.BIND]
    assert sc.ll_node is binds[1]  # LL(t.Next)
    assert vl.ll_node is binds[0]  # LL(Tail)
    assert sc.ll_binding == binds[1].stmt.binding


def test_interior_protected_both_sides():
    cfg, dom, windows = _setup(VARIANT)
    sc = next(w for w in windows.windows if w.kind == "SC")
    vl_assume = _assumes(cfg)[0]  # TRUE(VL(Tail)) — interior of SC window
    assert windows.protected(sc, vl_assume, "before")
    assert windows.protected(sc, vl_assume, "after")


def test_ll_unprotected_before_end_unprotected_after():
    cfg, dom, windows = _setup(VARIANT)
    sc = next(w for w in windows.windows if w.kind == "SC")
    assert not windows.protected(sc, sc.ll_node, "before")
    assert windows.protected(sc, sc.ll_node, "after")
    assert windows.protected(sc, sc.end_node, "before")
    assert not windows.protected(sc, sc.end_node, "after")


def test_membership_inclusive_of_endpoints():
    cfg, dom, windows = _setup(VARIANT)
    sc = next(w for w in windows.windows if w.kind == "SC")
    assert windows.inside(sc, sc.ll_node)
    assert windows.inside(sc, sc.end_node)
    blocks = windows.sc_block_memberships(sc.ll_node)
    assert sc in blocks


def test_window_spans_residual_loop():
    """GH shape: the VL inside the copy loop is dominated by the LL and
    postdominated by the SC."""
    source = """
    const W = 2;
    global S;
    class Obj { data; }
    threadlocal p;
    threadinit { p = new Obj; p.data = new int[W + 1]; }
    proc P(m0) {
      local m = LL(S) in
      local i = 1 in {
        loop {
          if (i > W) { break; }
          p.data[i] = m.data[i];
          TRUE(VL(S));
          i = i + 1;
        }
        TRUE(SC(S, p));
        return;
      }
    }
    """
    cfg, dom, windows = _setup(source)
    sc = next(w for w in windows.windows if w.kind == "SC")
    inner_vl = next(n for n in _assumes(cfg)
                    if "VL" in repr(n.stmt.cond))
    assert windows.protected(sc, inner_vl, "before")
    assert windows.protected(sc, inner_vl, "after")


def test_no_window_without_success_assumption():
    source = """
    global G;
    proc P(v) {
      local t = LL(G) in {
        if (SC(G, v)) { return; }
      }
    }
    """
    cfg, dom, windows = _setup(source)
    assert windows.windows == []  # the SC is a branch, not assumed


def test_cas_window_gated_by_callback():
    source = """
    global versioned C;
    proc P() {
      local c = C in {
        TRUE(CAS(C, c, c + 1));
      }
    }
    """
    cfg, dom, windows = _setup(source, cas_ok=lambda root: True)
    assert [w.kind for w in windows.windows] == ["CAS"]
    cfg2, dom2, none = _setup(source, cas_ok=lambda root: False)
    assert none.windows == []


def test_sc_with_multiple_matching_lls_reports_diagnostic():
    source = """
    global G;
    proc P(v) {
      local t = 0 in {
        if (v == 0) { t = LL(G); } else { t = LL(G); }
        TRUE(SC(G, v));
      }
    }
    """
    cfg, dom, windows = _setup(source)
    assert windows.windows == []
    assert windows.diagnostics


# -- dominators --------------------------------------------------------------------

def test_entry_dominates_everything():
    cfg, dom, _ = _setup(VARIANT)
    for node in cfg.nodes:
        if node in cfg.reachable_from(cfg.entry):
            assert dom.dominates(cfg.entry, node)


def test_exit_postdominates_reachable_nodes():
    cfg, dom, _ = _setup(VARIANT)
    for node in cfg.reachable_from(cfg.entry):
        assert dom.postdominates(cfg.exit, node)


def test_branch_does_not_dominate_sibling():
    prog = load_program("""
        global G;
        proc P() {
          if (G == 0) { G = 1; } else { G = 2; }
          G = 3;
        }
    """)
    cfg = build_cfg(prog.proc("P"))
    dom = Dominators(cfg)
    stmts = [n for n in cfg.nodes if n.kind is NodeKind.STMT]
    then_stmt, else_stmt, join_stmt = stmts
    assert not dom.dominates(then_stmt, join_stmt)
    assert not dom.postdominates(then_stmt, else_stmt)
    assert dom.postdominates(join_stmt, then_stmt)


def test_loop_head_dominates_body():
    prog = load_program("""
        global G;
        proc P() { loop { if (G == 1) { break; } G = 2; } }
    """)
    cfg = build_cfg(prog.proc("P"))
    dom = Dominators(cfg)
    head = cfg.loops[0].head
    for node in cfg.loops[0].body_nodes:
        assert dom.dominates(head, node)
