"""Tier-1 mirror of the CI lint gate: every corpus program and every
shipped example file must produce *exactly* the findings recorded in
``tests/lint_manifest.json`` — an unexpected finding fails, and so
does a silently lost expected one."""

import json
import pathlib

import pytest

from repro import corpus
from repro.analysis.lint import lint_program

HERE = pathlib.Path(__file__).parent
ROOT = HERE.parent
MANIFEST = json.loads((HERE / "lint_manifest.json").read_text())
EXPECTED = MANIFEST["expected"]

CORPUS_TARGETS = [name for name in EXPECTED if name.isupper()]
FILE_TARGETS = [name for name in EXPECTED if not name.isupper()]


def test_manifest_covers_the_whole_corpus():
    assert set(CORPUS_TARGETS) == set(corpus.__all__)


def test_manifest_covers_every_shipped_example():
    on_disk = sorted(str(p.relative_to(ROOT))
                     for p in (ROOT / "examples" / "synl").glob("*.synl"))
    assert sorted(FILE_TARGETS) == on_disk


@pytest.mark.parametrize("name", CORPUS_TARGETS)
def test_corpus_program_matches_manifest(name):
    result = lint_program(getattr(corpus, name), label=name)
    assert result.counts_by_rule() == EXPECTED[name]


@pytest.mark.parametrize("relpath", FILE_TARGETS)
def test_example_file_matches_manifest(relpath):
    source = (ROOT / relpath).read_text()
    result = lint_program(source, label=relpath)
    assert result.counts_by_rule() == EXPECTED[relpath]


def test_clean_programs_stay_clean():
    """The headline acceptance property: zero errors on every
    pre-existing (non-defect) corpus program."""
    defects = {"ABA_STACK", "ABA_STACK_FIXED", "DOUBLE_LL_DOWN"}
    for name in corpus.__all__:
        if name in defects:
            continue
        result = lint_program(getattr(corpus, name), label=name)
        assert result.errors == 0, f"{name}: {result.render()}"
