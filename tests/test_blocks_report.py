"""Atomic-block partitioning (§6.4) and Fig. 3-style reports."""

import pytest

from repro.analysis.atomicity import Atomicity, parse_atomicity
from repro.analysis.blocks import partition_lines, partition_procedure
from repro.analysis.report import ReportLine, render_figure, variant_lines


def _lines(letters: str) -> list[ReportLine]:
    return [ReportLine(f"x{i}", 0, f"stmt{i};", parse_atomicity(c), None)
            for i, c in enumerate(letters, start=1)]


@pytest.mark.parametrize("letters,expected_blocks", [
    ("B", 1),
    ("RBL", 1),          # one reducible block
    ("RLRL", 2),         # two LL/SC windows
    ("RBLRBL", 2),
    ("ARL", 2),          # A;R breaks
    ("AA", 2),           # two atomic actions cannot merge
    ("BBBB", 1),
    ("RRRLLL", 1),
    ("LR", 2),           # L;R is irreducible
    ("RALRAL", 2),       # R;A;L fuses per window
    ("N", 1),            # a single non-atomic line is its own block
    ("BNB", 3),          # N separates on both sides
])
def test_partition_counts(letters, expected_blocks):
    partition = partition_lines(_lines(letters))
    assert partition.n_blocks == expected_blocks
    assert partition.n_lines == len(letters)


def test_partition_blocks_are_maximal():
    partition = partition_lines(_lines("RBLRL"))
    sizes = [b.size for b in partition.blocks]
    assert sizes == [3, 2]


def test_partition_greedy_is_optimal_for_reducible_prefixes():
    # any split of "RL RL RL" into fewer than 3 blocks would need a
    # non-reducible block; greedy finds exactly 3
    partition = partition_lines(_lines("RLRLRL"))
    assert partition.n_blocks == 3


def test_every_allocator_block_is_atomic(allocator_analysis):
    for name in allocator_analysis.verdicts:
        for partition in partition_procedure(allocator_analysis, name):
            for block in partition.blocks:
                assert block.atomicity is not Atomicity.N, \
                    partition.render()


def test_allocator_total_blocks_is_fifteen(allocator_analysis):
    total = 0
    for name in allocator_analysis.verdicts:
        parts = partition_procedure(allocator_analysis, name)
        total += max(p.n_blocks for p in parts)
    assert total == 15


def test_partition_render_mentions_counts(allocator_analysis):
    (part, *_rest) = partition_procedure(allocator_analysis,
                                         "MallocFromActive")
    text = part.render()
    assert "atomic blocks" in text and "lines" in text


# -- report rendering ---------------------------------------------------------------

def test_variant_lines_are_labelled_in_order(nfq_prime_analysis):
    report = nfq_prime_analysis.verdicts["AddNode"].variants[0]
    lines = variant_lines(report, "a")
    assert [line.label for line in lines] == [
        f"a{i}" for i in range(1, 10)]


def test_report_line_render_format(nfq_prime_analysis):
    report = nfq_prime_analysis.verdicts["AddNode"].variants[0]
    first = variant_lines(report, "a")[0]
    assert first.render().startswith("a1:B")


def test_render_figure_covers_all_variants(nfq_prime_analysis):
    text = render_figure(nfq_prime_analysis)
    for name in ("AddNode", "UpdateTail1", "UpdateTail2", "DeqP1",
                 "DeqP2"):
        assert f"proc {name}(" in text


def test_render_figure_deqp_matches_paper_text(nfq_prime_analysis):
    text = render_figure(nfq_prime_analysis)
    assert "TRUE(h != LL(Tail));" in text
    assert "TRUE(SC(Head, next));" in text
