"""Interpreter edge cases, error paths, and determinism properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpError
from repro.interp import (Interp, RandomScheduler, ThreadSpec, run_random,
                          run_round_robin)

SRC = """
global G;
init { G = 0; }
proc Set(v) { G = v; }
proc Get() { return G; }
proc Div(a, b) { return a / b; }
proc Mod(a, b) { return a % b; }
"""


def test_unknown_procedure_rejected():
    interp = Interp(SRC)
    world = interp.make_world([ThreadSpec.of(("Nope",))])
    with pytest.raises(InterpError, match="unknown procedure"):
        interp.step(world, 0)


def test_arity_mismatch_rejected():
    interp = Interp(SRC)
    world = interp.make_world([ThreadSpec.of(("Set",))])
    with pytest.raises(InterpError, match="expects"):
        interp.step(world, 0)


def test_stepping_done_thread_rejected():
    interp = Interp(SRC)
    world = interp.make_world([ThreadSpec.of(("Set", 1))])
    run_round_robin(interp, world)
    with pytest.raises(InterpError, match="done"):
        interp.step(world, 0)


def test_begin_call_rejects_mid_procedure():
    interp = Interp(SRC)
    world = interp.make_world([ThreadSpec.of(("Set", 1))])
    interp.step(world, 0)  # now inside Set
    with pytest.raises(InterpError, match="mid-procedure"):
        interp.begin_call(world, 0, "Get", ())


@pytest.mark.parametrize("a,b,q,r", [
    (7, 2, 3, 1),
    (-7, 2, -3, -1),   # C-style truncation toward zero
    (7, -2, -3, 1),
    (-7, -2, 3, -1),
])
def test_division_truncates_toward_zero(a, b, q, r):
    interp = Interp(SRC)
    world = interp.make_world([ThreadSpec.of(("Div", a, b),
                                             ("Mod", a, b))])
    run_round_robin(interp, world)
    results = [e.result for e in world.history if e.kind == "return"]
    assert results == [q, r]


def test_null_arithmetic_rejected():
    interp = Interp("proc P() { return null + 1; }")
    world = interp.make_world([ThreadSpec.of(("P",))])
    with pytest.raises(InterpError, match="bad operands"):
        run_round_robin(interp, world)


def test_bool_and_int_compare_unequal():
    interp = Interp("proc P() { return 1 == true; }")
    world = interp.make_world([ThreadSpec.of(("P",))])
    run_round_robin(interp, world)
    assert world.history[-1].result is False


def test_repeat_spec_cycles_through_ops():
    interp = Interp(SRC)
    world = interp.make_world(
        [ThreadSpec.of(("Set", 1), ("Set", 2), repeat=True)])
    for _ in range(50):
        if not interp.enabled(world, 0):
            break
        interp.step(world, 0)
    sets = [e for e in world.history
            if e.kind == "return" and e.proc == "Set"]
    assert len(sets) > 5
    assert [e.args[0] for e in sets[:4]] == [1, 2, 1, 2]


def test_empty_repeat_spec_is_done():
    interp = Interp(SRC)
    world = interp.make_world([ThreadSpec.of(repeat=True)])
    assert world.threads[0].done


def test_history_sequence_numbers_monotone():
    interp = Interp(SRC)
    world = interp.make_world([
        ThreadSpec.of(("Set", 1), ("Get",)),
        ThreadSpec.of(("Set", 2), ("Get",)),
    ])
    run_random(interp, world, seed=9)
    seqs = [e.seq for e in world.history]
    assert seqs == sorted(seqs) == list(range(len(seqs)))


@given(st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_same_seed_same_history(seed):
    def run(s):
        interp = Interp(SRC)
        world = interp.make_world([
            ThreadSpec.of(("Set", 1), ("Get",)),
            ThreadSpec.of(("Set", 2), ("Get",)),
        ])
        run_random(interp, world, seed=s)
        return [repr(e) for e in world.history]

    assert run(seed) == run(seed)


def test_round_robin_is_fair():
    interp = Interp(SRC)
    world = interp.make_world([
        ThreadSpec.of(("Set", 1)),
        ThreadSpec.of(("Set", 2)),
    ])
    run_round_robin(interp, world)
    invokes = [e.tid for e in world.history if e.kind == "invoke"]
    assert invokes == [0, 1]


def test_threadlocal_isolation_between_threads():
    source = """
    threadlocal t;
    threadinit { t = 0; }
    proc Bump() { t = t + 1; return t; }
    """
    interp = Interp(source)
    world = interp.make_world([
        ThreadSpec.of(("Bump",), ("Bump",)),
        ThreadSpec.of(("Bump",)),
    ])
    run_round_robin(interp, world)
    per_thread = {}
    for e in world.history:
        if e.kind == "return":
            per_thread.setdefault(e.tid, []).append(e.result)
    assert per_thread[0] == [1, 2]
    assert per_thread[1] == [1]
