"""Resolver tests: variable kinds, bindings, scoping errors."""

import pytest

from repro.errors import ResolveError
from repro.synl import ast as A
from repro.synl.parser import parse_program
from repro.synl.resolve import load_program, resolve


def _vars(prog, name):
    return [n for n in prog.walk()
            if isinstance(n, A.Var) and n.name == name]


def test_global_kind_attached():
    prog = load_program("global G; proc P() { G = 1; }")
    (var,) = _vars(prog, "G")
    assert var.kind is A.VarKind.GLOBAL


def test_threadlocal_kind_attached():
    prog = load_program("threadlocal t; proc P() { t = 1; }")
    (var,) = _vars(prog, "t")
    assert var.kind is A.VarKind.THREADLOCAL


def test_param_kind_and_binding():
    prog = load_program("proc P(a) { return a; }")
    (var,) = _vars(prog, "a")
    assert var.kind is A.VarKind.PARAM
    assert var.binding == prog.procs[0].param_bindings["a"]


def test_const_kind():
    prog = load_program("const E = -1; proc P() { return E; }")
    (var,) = _vars(prog, "E")
    assert var.kind is A.VarKind.CONST


def test_local_binding_links_occurrences_to_decl():
    prog = load_program(
        "proc P() { local x = 1 in { x = x + 1; } }")
    decl = next(n for n in prog.walk() if isinstance(n, A.LocalDecl))
    occurrences = _vars(prog, "x")
    assert len(occurrences) == 2
    assert all(v.binding == decl.binding for v in occurrences)


def test_inner_local_shadows_outer():
    prog = load_program("""
        proc P() {
          local x = 1 in
          local x = 2 in { return x; }
        }
    """)
    decls = [n for n in prog.walk() if isinstance(n, A.LocalDecl)]
    (var,) = _vars(prog, "x")
    assert var.binding == decls[1].binding != decls[0].binding


def test_local_shadows_global():
    prog = load_program("global X; proc P() { local X = 1 in return X; }")
    (var,) = _vars(prog, "X")
    assert var.kind is A.VarKind.LOCAL


def test_undeclared_variable_rejected():
    with pytest.raises(ResolveError, match="undeclared"):
        load_program("proc P() { x = 1; }")


def test_duplicate_global_rejected():
    with pytest.raises(ResolveError, match="duplicate"):
        load_program("global X; global X;")


def test_duplicate_procedure_rejected():
    with pytest.raises(ResolveError, match="duplicate"):
        load_program("proc P() { skip; } proc P() { skip; }")


def test_duplicate_parameter_rejected():
    with pytest.raises(ResolveError):
        load_program("proc P(a, a) { skip; }")


def test_break_outside_loop_rejected():
    with pytest.raises(ResolveError, match="outside"):
        load_program("proc P() { break; }")


def test_unknown_loop_label_rejected():
    with pytest.raises(ResolveError, match="label"):
        load_program("proc P() { loop { continue zz; } }")


def test_assignment_to_const_rejected():
    with pytest.raises(ResolveError, match="constant"):
        load_program("const E = 1; proc P() { E = 2; }")


def test_deep_field_chain_rejected():
    # Table 1: field bases must be variables; chains need locals
    with pytest.raises(ResolveError, match="field base"):
        load_program("global X; proc P() { return X.a.b; }")


def test_param_bindings_unique_across_procs():
    prog = load_program("proc P(a) { return a; } proc Q(a) { return a; }")
    b1 = prog.procs[0].param_bindings["a"]
    b2 = prog.procs[1].param_bindings["a"]
    assert b1 != b2


def test_resolution_reports_binding_info():
    prog = parse_program("global G; proc P(a) { return a; }")
    res = resolve(prog)
    infos = {i.name: i.kind for i in res.bindings.values()}
    assert infos["G"] is A.VarKind.GLOBAL
    assert infos["a"] is A.VarKind.PARAM
