"""State-graph capture: exact count reconciliation with the explorer,
deterministic artifacts across runs (the ``graph diff`` canary), POR
pruned-edge accounting, bounded emission, and the CLI surface."""

from __future__ import annotations

import json

import pytest

from repro import corpus
from repro.cli import main
from repro.interp import Interp, ThreadSpec
from repro.mc import Explorer
from repro.obs import graph as graph_mod
from repro.obs.graph import (GraphWriter, _Thinner, diff_graphs,
                             from_records, graph_stats, key_id,
                             node_cap_from_env, read_graph,
                             render_diff, render_stats, stable_uid_map,
                             to_dot)

GH_SPECS = [ThreadSpec.of(("Apply", 1)), ThreadSpec.of(("Apply", 2))]


def _capture(tmp_path, name, mode, *, record_pruned=False,
             node_cap=None, source=corpus.GH_PROGRAM1, specs=None):
    interp = Interp(source)
    writer = GraphWriter(tmp_path / name, mode=mode,
                         threads=len(specs or GH_SPECS),
                         node_cap=node_cap,
                         record_pruned=record_pruned,
                         uid_map=stable_uid_map(interp))
    try:
        result = Explorer(interp, specs or GH_SPECS, mode=mode,
                          graph=writer).run()
    finally:
        writer.close()
    return result, read_graph(tmp_path / name)


# -- ids and uid stability ---------------------------------------------------------

def test_key_id_is_deterministic_16_hex():
    key = ((("g", 1),), ((0, (), None, (), ()),))
    a, b = key_id(key), key_id(key)
    assert a == b
    assert len(a) == 16
    assert int(a, 16) >= 0
    assert key_id(key) != key_id((key,))


def test_stable_uid_map_is_build_independent():
    # two separate builds of the same program shift raw uids, but the
    # stable map must send corresponding nodes to the same index
    m1 = stable_uid_map(Interp(corpus.GH_PROGRAM1))
    m2 = stable_uid_map(Interp(corpus.GH_PROGRAM1))
    assert sorted(m1.values()) == sorted(m2.values())
    assert sorted(m1.values()) == list(range(len(m1)))


def test_stable_uid_map_skips_none():
    assert stable_uid_map(None) == {}


# -- bounded emission --------------------------------------------------------------

def test_thinner_admits_first_cap_verbatim():
    t = _Thinner(cap=5)
    assert all(t.admit() for _ in range(5))
    assert not t.truncated
    for _ in range(100):
        t.admit()
    assert t.truncated
    assert t.written < t.count == 105


def test_thinner_is_deterministic():
    a, b = _Thinner(cap=3, seed=7), _Thinner(cap=3, seed=7)
    assert [a.admit() for _ in range(200)] \
        == [b.admit() for _ in range(200)]


def test_node_cap_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_GRAPH_NODE_CAP", raising=False)
    assert node_cap_from_env() == graph_mod.DEFAULT_NODE_CAP
    monkeypatch.setenv("REPRO_GRAPH_NODE_CAP", "1234")
    assert node_cap_from_env() == 1234
    monkeypatch.setenv("REPRO_GRAPH_NODE_CAP", "bogus")
    assert node_cap_from_env() == graph_mod.DEFAULT_NODE_CAP
    monkeypatch.setenv("REPRO_GRAPH_NODE_CAP", "-5")
    assert node_cap_from_env() == graph_mod.DEFAULT_NODE_CAP


# -- reconciliation with MCResult --------------------------------------------------

def test_capture_counts_equal_mcresult_exactly(tmp_path):
    result, doc = _capture(tmp_path, "full.jsonl", "full")
    summary = doc["summary"]
    assert summary["nodes"] == result.states
    assert summary["edges"] == result.transitions
    assert len(doc["nodes"]) == result.states        # below cap
    assert len(doc["edges"]) == result.transitions
    assert not summary["truncated"]
    # exactly the non-dup edges lead to new nodes
    assert sum(not e["dup"] for e in doc["edges"]) \
        == result.states - 1
    # exactly one init node, at depth 1
    inits = [n for n in doc["nodes"].values() if n.get("init")]
    assert len(inits) == 1 and inits[0]["depth"] == 1


def test_por_pruned_reconciles_per_node_with_full_run(tmp_path):
    """At every state POR expanded, kept + pruned out-degree must
    equal the full run's out-degree at that same state — the ample-set
    bookkeeping cannot lose or invent transitions."""
    _, full = _capture(tmp_path, "full.jsonl", "full")
    result, por = _capture(tmp_path, "por.jsonl", "por",
                           record_pruned=True)
    assert por["summary"]["pruned"] == len(por["pruned"]) > 0
    # POR explores a subset of the full graph
    assert set(por["nodes"]) <= set(full["nodes"])
    full_out: dict[str, int] = {}
    for e in full["edges"]:
        full_out[e["src"]] = full_out.get(e["src"], 0) + 1
    por_out: dict[str, int] = {}
    for e in por["edges"]:
        por_out[e["src"]] = por_out.get(e["src"], 0) + 1
    for e in por["pruned"]:
        por_out[e["src"]] = por_out.get(e["src"], 0) + 1
    mismatches = [gid for gid in por_out
                  if por_out[gid] != full_out.get(gid)]
    assert mismatches == []


def test_truncated_capture_is_deterministic(tmp_path):
    ra, doc_a = _capture(tmp_path, "a.jsonl", "full", node_cap=50)
    rb, doc_b = _capture(tmp_path, "b.jsonl", "full", node_cap=50)
    assert doc_a["summary"]["truncated"]
    assert doc_a["summary"]["nodes"] == ra.states == rb.states
    assert (tmp_path / "a.jsonl").read_text() \
        == (tmp_path / "b.jsonl").read_text()
    assert len(doc_a["nodes"]) < ra.states


def test_mover_tags_ride_edges(tmp_path):
    from repro.analysis import analyze_program
    from repro.obs import heatmap
    interp = Interp(corpus.GH_PROGRAM1)
    analysis = analyze_program(corpus.GH_PROGRAM1)
    annotations = heatmap.uid_annotations(interp, analysis)
    assert annotations
    writer = GraphWriter(tmp_path / "g.jsonl", mode="full", threads=2,
                         mover_of=heatmap.mover_fn(annotations),
                         uid_map=stable_uid_map(interp))
    try:
        Explorer(interp, GH_SPECS, mode="full", graph=writer).run()
    finally:
        writer.close()
    doc = read_graph(tmp_path / "g.jsonl")
    movers = {e["mover"] for e in doc["edges"]}
    assert movers & {"R", "L", "B", "N"}


# -- reading and analytics ---------------------------------------------------------

def test_read_graph_rejects_non_capture(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"kind": "node", "id": "x", "depth": 1}\n')
    with pytest.raises(ValueError, match="not a graph capture"):
        read_graph(bad)
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty graph capture"):
        read_graph(empty)


def test_read_graph_rejects_unknown_version_and_kind():
    with pytest.raises(ValueError, match="unsupported graph schema"):
        from_records([{"kind": "graph.header", "v": 999}])
    with pytest.raises(ValueError, match="unknown record kind"):
        from_records([{"kind": "graph.header",
                       "v": graph_mod.SCHEMA_VERSION},
                      {"kind": "wat"}])


def test_graph_stats_and_render(tmp_path):
    result, doc = _capture(tmp_path, "g.jsonl", "full")
    stats = graph_stats(doc)
    assert stats["nodes"] == result.states
    assert stats["edges"] == result.transitions
    assert stats["max_depth"] >= 1
    assert sum(n for _, n in stats["depth_layers"]) == result.states
    assert stats["branching"]["max"] >= stats["branching"]["min"] >= 0
    assert stats["terminal"] >= 1
    text = render_stats(stats)
    assert f"{stats['nodes']:,}" in text
    assert "depth layers" in text


def test_to_dot_caps_and_renders():
    doc = from_records([
        {"kind": "graph.header", "v": graph_mod.SCHEMA_VERSION,
         "mode": "full", "threads": 1, "node_cap": 10,
         "por_pruned": True},
        {"kind": "node", "id": "aa", "depth": 1, "init": True},
        {"kind": "node", "id": "bb", "depth": 2, "q": True},
        {"kind": "edge", "src": "aa", "dst": "bb", "tid": 0, "uid": 3,
         "op": "stmt", "mover": "R", "dup": False},
        {"kind": "pruned", "src": "aa", "dst": "bb", "tid": 1,
         "uid": 4, "op": "stmt"},
    ])
    dot = to_dot(doc)
    assert "digraph statespace" in dot
    assert "doublecircle" in dot          # init node
    assert "dotted" in dot                # pruned edge
    assert "#2b8cbe" in dot               # R-mover color
    with pytest.raises(ValueError, match="--max-nodes"):
        to_dot(doc, max_nodes=1)


# -- diffing -----------------------------------------------------------------------

def test_diff_identical_runs(tmp_path):
    _, a = _capture(tmp_path, "a.jsonl", "full")
    _, b = _capture(tmp_path, "b.jsonl", "full")
    drift = diff_graphs(a, b)
    assert drift["identical"]
    assert render_diff(drift) == "graphs identical"


def test_diff_reports_readable_drift(tmp_path):
    _, full = _capture(tmp_path, "full.jsonl", "full")
    _, por = _capture(tmp_path, "por.jsonl", "por")
    drift = diff_graphs(full, por)
    assert not drift["identical"]
    assert drift["nodes_only_a"] > 0      # full visits more states
    assert drift["nodes_only_b"] == 0     # por is a strict subset
    text = render_diff(drift, "full", "por")
    assert "graph drift:" in text
    assert "full" in text and "por" in text
    assert "sample nodes only in full" in text


# -- CLI surface -------------------------------------------------------------------

def _mc_with_graph(tmp_path, name, *extra):
    prog = tmp_path / "p.synl"
    prog.write_text(corpus.GH_PROGRAM1)
    out = tmp_path / name
    code = main(["mc", str(prog), "Apply(1)", "Apply(2)",
                 "--mode", "por", "--graph-out", str(out), *extra])
    assert code == 0
    return out


def test_cli_graph_roundtrip(tmp_path, capsys):
    a = _mc_with_graph(tmp_path, "a.jsonl")
    b = _mc_with_graph(tmp_path, "b.jsonl", "--graph-por-pruned")
    capsys.readouterr()

    assert main(["graph", "stats", str(a)]) == 0
    stats_text = capsys.readouterr().out
    assert "nodes" in stats_text and "depth layers" in stats_text

    assert main(["graph", "stats", str(a), "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["nodes"] > 0 and stats["pruned"] == 0

    assert main(["graph", "stats", str(b), "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["pruned"] > 0

    # identical seeded explorations: zero drift, exit 0 (CI canary);
    # the pruned capture adds records, so diff against it is drift
    c = _mc_with_graph(tmp_path, "c.jsonl")
    capsys.readouterr()
    assert main(["graph", "diff", str(a), str(c)]) == 0
    assert "identical" in capsys.readouterr().out
    assert main(["graph", "diff", str(a), str(b)]) == 1
    assert "drift" in capsys.readouterr().out

    dot_path = tmp_path / "g.dot"
    assert main(["graph", "dot", str(a), "--max-nodes", "100000",
                 "-o", str(dot_path)]) == 0
    assert dot_path.read_text().startswith("digraph statespace")


def test_cli_graph_errors(tmp_path, capsys):
    bogus = tmp_path / "events.jsonl"
    bogus.write_text('{"v": 1, "seq": 0, "t": 0.0, "kind": "mc.pop", '
                     '"depth": 1}\n')
    assert main(["graph", "stats", str(bogus)]) == 2
    assert main(["graph", "dot", str(bogus)]) == 2
    assert main(["graph", "diff", str(bogus), str(bogus)]) == 2
