"""The incremental engine (repro.analysis.summaries.engine): replay
fidelity, invalidation cascades end to end, drift detection, the
verify canary, and the warm-cache canary."""

from __future__ import annotations

import json

from repro import corpus
from repro.analysis.inference import InferenceOptions
from repro.analysis.summaries import (
    SummaryStore,
    analyze_with_summaries,
    verify_store,
    warm_canary,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler


def _store(tmp_path):
    return SummaryStore(tmp_path / "summaries")


def _strip(doc: dict) -> dict:
    return {k: v for k, v in doc.items()
            if k not in ("run_meta", "cached", "trace", "profile")}


CALLS = """
global G; global H;
proc Leaf() { G = 1; }
proc Top() { Leaf(); }
proc Solo() { H = 2; }
"""


# -- hit / miss / replay -------------------------------------------------------

def test_cold_miss_then_full_hit(tmp_path):
    store = _store(tmp_path)
    r1, i1 = analyze_with_summaries(corpus.CAS_COUNTER, store=store)
    assert not i1["cached"]
    assert i1["misses"] == ["Get", "Inc"]
    r2, i2 = analyze_with_summaries(corpus.CAS_COUNTER, store=store)
    assert i2["cached"]
    assert i2["hits"] == ["Get", "Inc"]
    assert not i2["misses"] and not i2["drift"]
    assert getattr(r2, "cached", False)


def test_replay_is_byte_identical_modulo_volatile(tmp_path):
    store = _store(tmp_path)
    fresh, _ = analyze_with_summaries(corpus.ABA_STACK, store=store)
    cached, info = analyze_with_summaries(corpus.ABA_STACK,
                                          store=store)
    assert info["cached"]
    a = json.dumps(_strip(fresh.to_dict()), sort_keys=True)
    b = json.dumps(_strip(cached.to_dict()), sort_keys=True)
    assert a == b
    # cached doc advertises itself and keeps provenance chains
    doc = cached.to_dict()
    assert doc["cached"] is True
    assert "run_meta" in doc
    lines = doc["procedures"][0]["variants"][0]["lines"]
    assert any(line.get("provenance") for line in lines)
    bare = cached.to_dict(include_provenance=False)
    bare_lines = bare["procedures"][0]["variants"][0]["lines"]
    assert all("provenance" not in line for line in bare_lines)


def test_cached_result_mirrors_analysis_result(tmp_path):
    store = _store(tmp_path)
    fresh, _ = analyze_with_summaries(corpus.ABA_STACK, store=store)
    cached, _ = analyze_with_summaries(corpus.ABA_STACK, store=store)
    assert cached.all_atomic == fresh.all_atomic
    assert cached.atomic_procedures() == fresh.atomic_procedures()
    assert [cached.is_atomic(n) for n in cached.verdicts] \
        == [fresh.is_atomic(n) for n in fresh.verdicts]
    assert cached.diagnostics == list(fresh.diagnostics)
    assert cached.figure() and cached.figure(explain=True)
    assert [f.render() for f in cached.lint.findings] \
        == [f.render() for f in fresh.lint.findings]


def test_metrics_and_profiler_attribution(tmp_path):
    store = _store(tmp_path)
    registry = MetricsRegistry()
    profiler = Profiler()
    analyze_with_summaries(corpus.CAS_COUNTER, store=store,
                           metrics=registry, profiler=profiler)
    snap = registry.snapshot()
    assert snap["summary.procs.miss"] == 2
    assert snap["summary.programs.miss"] == 1
    counters = profiler.counters()
    assert counters["summary.hash"]["work"] == 2
    assert "summary.emit" in counters
    analyze_with_summaries(corpus.CAS_COUNTER, store=store,
                           metrics=registry, profiler=profiler)
    snap = registry.snapshot()
    assert snap["summary.procs.hit"] == 2
    assert snap["summary.programs.hit"] == 1
    assert "summary.replay" in profiler.counters()


def test_summary_events_emitted(tmp_path):
    from repro.obs.events import EventStream

    store = _store(tmp_path)
    events = EventStream()
    analyze_with_summaries(corpus.CAS_COUNTER, store=store,
                           events=events, label="cas")
    analyze_with_summaries(corpus.CAS_COUNTER, store=store,
                           events=events, label="cas")
    kinds = [e["kind"] for e in events.snapshot()]
    assert "summary.resolve" in kinds
    assert "summary.emit" in kinds
    assert "summary.replay" in kinds


# -- invalidation cascades (satellite) -----------------------------------------

def test_callee_edit_invalidates_callers_but_not_siblings(tmp_path):
    store = _store(tmp_path)
    analyze_with_summaries(CALLS, store=store)
    edited = CALLS.replace("G = 1", "G = 3")
    _, info = analyze_with_summaries(edited, store=store)
    assert sorted(info["misses"]) == ["Leaf", "Top"]
    assert info["hits"] == ["Solo"]
    # stale records for known names count as invalidations
    assert sorted(info["invalidated"]) == ["Leaf", "Top"]
    assert not info["drift"]


def test_lint_suppression_edit_invalidates_only_that_proc(tmp_path):
    base = ("global Sem;\n"
            "proc Down() {\n"
            "  local t = Sem in { Sem = t - 1; }\n"
            "}\n"
            "proc Observe() {\n"
            "  local t = Sem in { return t; }\n"
            "}\n")
    suppressed = base.replace(
        "  local t = Sem in { Sem = t - 1; }",
        "  // lint: ignore[race.unlocked]\n"
        "  local t = Sem in { Sem = t - 1; }")
    store = _store(tmp_path)
    _, cold = analyze_with_summaries(base, store=store)
    assert not cold["cached"]
    _, info = analyze_with_summaries(suppressed, store=store)
    assert info["misses"] == ["Down"]
    assert info["hits"] == ["Observe"]
    assert info["invalidated"] == ["Down"]
    # the suppression landed in Down's lint-bearing slice
    down_key = info["proc_keys"]["Down"]
    record = store.get("proc", down_key)
    rules = {f["rule"] for f in record["slice"]["lint"]}
    assert "race.unlocked" not in rules


def test_whitespace_edit_is_a_full_proc_hit(tmp_path):
    store = _store(tmp_path)
    analyze_with_summaries(CALLS, store=store)
    spaced = CALLS.replace("Leaf()", "Leaf( )")  # text-only change
    _, info = analyze_with_summaries(spaced, store=store)
    # program record misses (source text changed) but every proc
    # summary replays, so the recompute doubles as a drift check
    assert not info["cached"]
    assert sorted(info["hits"]) == ["Leaf", "Solo", "Top"]
    assert not info["drift"]


LOCALS = ("global Sem;\n"
          "proc Down() {\n"
          "  local tmp = Sem in { Sem = tmp - 1; }\n"
          "}\n"
          "proc Observe() {\n"
          "  local tmp = Sem in { return tmp; }\n"
          "}\n")


def test_local_rename_is_a_full_proc_hit(tmp_path):
    # A pure local rename keeps every proc key (canonical hashing) but
    # changes the pretty-printed statement text and any rendered lint
    # message naming the local.  The drift comparison must therefore
    # ignore those name-bearing fields: the recompute after the rename
    # has to report hits with NO drift, not trip the soundness alarm.
    store = _store(tmp_path)
    _, cold = analyze_with_summaries(LOCALS, store=store)
    assert sorted(cold["misses"]) == ["Down", "Observe"]
    renamed = LOCALS.replace("tmp", "current")
    _, info = analyze_with_summaries(renamed, store=store)
    assert not info["cached"]  # program key tracks exact source text
    assert sorted(info["hits"]) == ["Down", "Observe"]
    assert not info["misses"]
    assert not info["drift"], info["drift"]


# -- drift detection (the soundness alarm) -------------------------------------

def _tamper_proc(store, info, name):
    key = info["proc_keys"][name]
    record = store.get("proc", key)
    sl = record["slice"]
    sl["atomic"] = not sl["atomic"]
    if sl["variants"]:
        sl["variants"][0]["body_atomicity"] = "nonatomic"
    store.put("proc", key, name,
              {k: v for k, v in record.items()
               if k not in ("v", "kind", "key", "name")})


def test_tampered_summary_is_reported_as_drift(tmp_path):
    store = _store(tmp_path)
    _, cold = analyze_with_summaries(corpus.CAS_COUNTER, store=store,
                                     label="cas")
    _tamper_proc(store, cold, "Inc")
    # drop the program record so the engine recomputes and compares
    for path in store.iter_paths("program"):
        path.unlink()
    _, info = analyze_with_summaries(corpus.CAS_COUNTER, store=store,
                                     label="cas")
    assert [d["proc"] for d in info["drift"]] == ["Inc"]
    diff = info["drift"][0]["diff"]
    assert not diff["empty"]
    assert any(entry["name"] == "Inc"
               for entry in diff["procedures"])


def test_verify_store_catches_tampered_program_doc(tmp_path):
    store = _store(tmp_path)
    analyze_with_summaries(corpus.CAS_COUNTER, store=store,
                           label="cas")
    report = verify_store(store)
    assert report == {"checked": 1, "mismatches": []}
    record = next(iter(store.records("program")))
    record["doc"]["all_atomic"] = not record["doc"]["all_atomic"]
    store.put("program", record["key"], record["name"],
              {k: v for k, v in record.items()
               if k not in ("v", "kind", "key", "name")})
    report = verify_store(store)
    assert report["checked"] == 1
    assert len(report["mismatches"]) == 1
    assert not report["mismatches"][0]["diff"]["empty"]


# -- options and corpus --------------------------------------------------------

def test_options_partition_the_cache(tmp_path):
    store = _store(tmp_path)
    analyze_with_summaries(corpus.CAS_COUNTER, store=store)
    _, info = analyze_with_summaries(
        corpus.CAS_COUNTER, InferenceOptions(enable_lint=False),
        store=store)
    assert not info["cached"]
    assert len(info["misses"]) == 2


def test_warm_canary_full_corpus(tmp_path):
    report = warm_canary(tmp_path / "canary")
    assert report["ok"], report
    assert report["programs"] >= 19
    assert not report["not_cached"]
    assert not report["mismatched"]
    assert report["stats"]["programs"] == report["programs"]


def test_warm_speedup_by_work_counters(tmp_path):
    from repro.analysis.summaries import analyze_corpus

    store = _store(tmp_path)

    def work(profiler):
        return sum(entry["calls"] + entry["work"]
                   for entry in profiler.counters().values())

    cold = Profiler()
    analyze_corpus(store, profiler=cold)
    warm = Profiler()
    analyze_corpus(store, profiler=warm)
    assert work(cold) >= 5 * work(warm)
