"""Model-checker property classes and the CLI."""

import pytest

from repro import corpus
from repro.cli import main as cli_main
from repro.interp import Interp, ThreadSpec, run_round_robin
from repro.mc.properties import QueueContents, QueueShape, _QueueGhost
from repro.interp.state import Event


def _world(source, calls):
    interp = Interp(source)
    world = interp.make_world([ThreadSpec.of(*calls)])
    return interp, world


def test_queue_shape_holds_initially_and_after_ops():
    interp, world = _world(corpus.NFQ_PRIME,
                           [("AddNode", 1), ("AddNode", 2)])
    prop = QueueShape()
    assert prop.check_state(world, interp, None) is None
    run_round_robin(interp, world)
    assert prop.check_state(world, interp, None) is None


def test_queue_shape_detects_cycle():
    interp, world = _world(corpus.NFQ_PRIME, [("AddNode", 1)])
    run_round_robin(interp, world)
    # corrupt: make the first node point to itself
    head = world.globals["Head"]
    world.heap.write_field(head, "Next", head)
    message = QueueShape().check_state(world, interp, None)
    assert message is not None and "cyclic" in message


def test_queue_shape_detects_detached_tail():
    interp, world = _world(corpus.NFQ_PRIME, [("AddNode", 1)])
    run_round_robin(interp, world)
    world.globals["Tail"] = world.heap.alloc("Node")
    message = QueueShape().check_state(world, interp, None)
    assert message is not None and "Tail" in message


def test_queue_contents_ghost_tracks_events():
    prop = QueueContents()
    ghost = prop.initial_ghost()
    ghost = prop.on_event(ghost, Event("return", 0, "AddNode", (5,)))
    ghost = prop.on_event(ghost, Event("return", 0, "DeqP", (), result=5))
    assert ghost.enqueued == (5,) and ghost.dequeued == (5,)
    # EMPTY dequeues and invokes are ignored
    ghost2 = prop.on_event(ghost, Event("return", 0, "DeqP", (),
                                        result=-1))
    assert ghost2 is ghost
    ghost3 = prop.on_event(ghost, Event("invoke", 0, "AddNode", (9,)))
    assert ghost3 is ghost


def test_queue_contents_quiescent_check():
    interp, world = _world(corpus.NFQ_PRIME, [("AddNode", 7)])
    run_round_robin(interp, world)
    prop = QueueContents()
    good = _QueueGhost(enqueued=(7,))
    assert prop.check_quiescent(world, interp, good) is None
    missing = _QueueGhost(enqueued=(7, 8))
    message = prop.check_quiescent(world, interp, missing)
    assert message is not None and "lost" in message
    phantom = _QueueGhost(enqueued=(), dequeued=(3,))
    message = prop.check_quiescent(world, interp, phantom)
    assert message is not None and "never enqueued" in message


# -- CLI ---------------------------------------------------------------------------

@pytest.fixture
def sem_file(tmp_path):
    path = tmp_path / "sem.synl"
    path.write_text(corpus.SEMAPHORE)
    return str(path)


def test_cli_analyze_atomic_exits_zero(sem_file, capsys):
    assert cli_main(["analyze", sem_file]) == 0
    out = capsys.readouterr().out
    assert "Down: ATOMIC" in out and "Up: ATOMIC" in out


def test_cli_analyze_nonatomic_exits_one(tmp_path, capsys):
    path = tmp_path / "nfq.synl"
    path.write_text(corpus.NFQ)
    assert cli_main(["analyze", str(path)]) == 1
    assert cli_main(["analyze", "--lenient", str(path)]) == 0


def test_cli_blocks(sem_file, capsys):
    assert cli_main(["blocks", sem_file]) == 0
    assert "atomic blocks" in capsys.readouterr().out


def test_cli_variants(sem_file, capsys):
    assert cli_main(["variants", sem_file]) == 0
    assert "TRUE(SC(Sem, tmp - 1))" in capsys.readouterr().out


def test_cli_run(sem_file, capsys):
    code = cli_main(["run", sem_file, "Down(),Up()", "Down(),Up()",
                     "--seed", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "all threads done" in out
    assert "ret  Down()" in out


def test_cli_mc_clean(sem_file, capsys):
    code = cli_main(["mc", sem_file, "Down(),Up()", "Down(),Up()",
                     "--mode", "atomic"])
    assert code == 0
    assert "[atomic]" in capsys.readouterr().out


def test_cli_mc_violation(tmp_path, capsys):
    path = tmp_path / "bad.synl"
    path.write_text("""
        global G;
        init { G = 0; }
        proc Boom() { assert(G == 1); }
    """)
    assert cli_main(["mc", str(path), "Boom()"]) == 1


def test_cli_missing_file(capsys):
    assert cli_main(["analyze", "/nonexistent.synl"]) == 2


def test_cli_parse_error(tmp_path, capsys):
    path = tmp_path / "broken.synl"
    path.write_text("proc P( {")
    assert cli_main(["analyze", str(path)]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_experiments_unknown_name(capsys):
    assert cli_main(["experiments", "nope"]) == 2


def test_cli_experiments_section64(capsys):
    assert cli_main(["experiments", "section64"]) == 0
    out = capsys.readouterr().out
    assert "15" in out and "74" in out
