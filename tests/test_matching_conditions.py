"""Matching LL / matching read discovery (§5.2) and local-condition
blocks (§5.3)."""

from repro.analysis.actions import location_target
from repro.analysis.conditions import (blocks_of_proc, complementary,
                                       condition_excludes)
from repro.analysis.matching import (matching_lls, matching_lls_search,
                                     matching_reads)
from repro.cfg import NodeKind, build_cfg
from repro.synl import ast as A
from repro.synl.resolve import load_program


def _cfg(source, proc="P"):
    prog = load_program(source)
    return prog, build_cfg(prog.proc(proc))


def _sc_node(cfg):
    """The CFG node whose *own* actions include an SC (branch conditions,
    bind initializers, simple statements — not nested block bodies)."""
    for node in cfg.nodes:
        roots = []
        if node.expr is not None:
            roots.append(node.expr)
        if node.kind is NodeKind.STMT and node.stmt is not None:
            roots.append(node.stmt)
        for x in roots:
            for sub in x.walk():
                if isinstance(sub, A.SCExpr):
                    return node, sub
    raise AssertionError("no SC found")


def test_unique_matching_ll():
    prog, cfg = _cfg("""
        global G;
        proc P(v) {
          local t = LL(G) in {
            if (SC(G, v)) { return; }
          }
        }
    """)
    node, sc = _sc_node(cfg)
    matches = matching_lls(cfg, node, location_target(sc.loc))
    assert len(matches) == 1
    assert next(iter(matches)).kind is NodeKind.BIND


def test_two_matching_lls_through_branches():
    """Both branches contain an LL; either can match (the paper's
    example of a non-unique matching LL expression)."""
    prog, cfg = _cfg("""
        global G;
        proc P(v) {
          local t = 0 in {
            if (v == 0) { t = LL(G); } else { t = LL(G); }
            SC(G, v);
          }
        }
    """)
    node, sc = _sc_node(cfg)
    matches = matching_lls(cfg, node, location_target(sc.loc))
    assert len(matches) == 2


def test_intervening_ll_shadows_earlier_one():
    prog, cfg = _cfg("""
        global G;
        proc P(v) {
          local a = LL(G) in
          local b = LL(G) in {
            SC(G, v);
          }
        }
    """)
    node, sc = _sc_node(cfg)
    matches = matching_lls(cfg, node, location_target(sc.loc))
    (m,) = matches
    assert m.stmt.name == "b"


def test_ll_on_other_variable_does_not_match():
    prog, cfg = _cfg("""
        global G; global H;
        proc P(v) {
          local t = LL(H) in {
            SC(G, v);
          }
        }
    """)
    node, sc = _sc_node(cfg)
    assert matching_lls(cfg, node, location_target(sc.loc)) == set()


def test_matching_read_for_cas():
    prog, cfg = _cfg("""
        global versioned C;
        proc P() {
          local c = C in {
            if (CAS(C, c, c + 1)) { return; }
          }
        }
    """)
    cas_node = next(n for n in cfg.nodes if n.kind is NodeKind.BRANCH)
    cas = cas_node.expr
    matches = matching_reads(cfg, cas_node, cas)
    assert len(matches) == 1


def test_ll_in_loop_header_matches_around_backedge():
    """The retry idiom: one LL per iteration.  The backward search
    crosses the loop back edge but still finds exactly the one LL and
    never escapes the procedure entry."""
    prog, cfg = _cfg("""
        global G;
        proc P() {
          loop {
            local t = LL(G) in {
              if (SC(G, t + 1)) { return; }
            }
          }
        }
    """)
    node, sc = _sc_node(cfg)
    search = matching_lls_search(cfg, node, location_target(sc.loc))
    assert len(search.matches) == 1
    assert not search.reaches_entry


def test_search_reaches_entry_when_a_path_skips_the_ll():
    """An SC reachable without any reservation: the matching-LL search
    escapes the procedure entry (lint's llsc.ll-gap)."""
    prog, cfg = _cfg("""
        global G;
        proc P(v) {
          if (v == 0) {
            local t = LL(G) in { skip; }
          }
          SC(G, v);
        }
    """)
    node, sc = _sc_node(cfg)
    search = matching_lls_search(cfg, node, location_target(sc.loc))
    assert len(search.matches) == 1
    assert search.reaches_entry


def test_search_agrees_with_matching_lls():
    prog, cfg = _cfg("""
        global G;
        proc P(v) {
          local t = 0 in {
            if (v == 0) { t = LL(G); } else { t = LL(G); }
            SC(G, v);
          }
        }
    """)
    node, sc = _sc_node(cfg)
    target = location_target(sc.loc)
    search = matching_lls_search(cfg, node, target)
    assert search.matches == matching_lls(cfg, node, target)
    assert len(search.matches) == 2
    assert not search.reaches_entry


def test_cas_with_no_read_of_region_has_no_matching_read():
    """The expected value is a bound variable, but it was never bound
    from a read of the CAS'd region — no matching read (§5.2)."""
    prog, cfg = _cfg("""
        global versioned C; global D;
        proc P() {
          local c = D in {
            if (CAS(C, c, c + 1)) { return; }
          }
        }
    """)
    cas_node = next(n for n in cfg.nodes if n.kind is NodeKind.BRANCH)
    assert matching_reads(cfg, cas_node, cas_node.expr) == set()


def test_cas_with_constant_expected_has_no_matching_read():
    prog, cfg = _cfg("""
        global versioned C;
        proc P() {
          if (CAS(C, 0, 1)) { return; }
        }
    """)
    cas_node = next(n for n in cfg.nodes if n.kind is NodeKind.BRANCH)
    assert matching_reads(cfg, cas_node, cas_node.expr) == set()


# -- local conditions (§5.3) -----------------------------------------------------------

def _variant_proc(source):
    """Parse a straight-line variant-style procedure."""
    prog = load_program(source)
    return prog.procs[0]


def test_llsc_block_detected_with_condition():
    proc = _variant_proc("""
        class Node { Next; }
        global Tail;
        proc AddNode(node) {
          local t = LL(Tail) in
          local next = LL(t.Next) in {
            TRUE(next == null);
            TRUE(SC(t.Next, node));
          }
        }
    """)
    blocks = blocks_of_proc(proc)
    llsc = [b for b in blocks if b.kind == "llsc"]
    assert len(llsc) == 1
    assert llsc[0].svar.field == "Next"
    assert llsc[0].condition == frozenset({("==", None)})


def test_local_block_detected_with_condition():
    proc = _variant_proc("""
        class Node { Next; }
        global Tail;
        proc UpdateTail() {
          local t = LL(Tail) in
          local next = t.Next in {
            TRUE(next != null);
            TRUE(SC(Tail, next));
          }
        }
    """)
    blocks = blocks_of_proc(proc)
    by_lvar = {b.decl.name: b for b in blocks}
    assert by_lvar["next"].kind == "local"
    assert by_lvar["next"].condition == frozenset({("!=", None)})
    # the outer block on Tail IS an LL-SC block (SC(Tail, ...) inside)
    assert by_lvar["t"].kind == "llsc"


def test_updated_lvar_disqualifies_block():
    proc = _variant_proc("""
        global G;
        proc P() {
          local x = G in {
            x = 1;
            TRUE(x == 1);
          }
        }
    """)
    assert blocks_of_proc(proc) == []


def test_condition_atoms_ignore_nested_assumes():
    proc = _variant_proc("""
        global G;
        proc P() {
          local x = G in {
            if (G == 0) { TRUE(x == 1); }
            TRUE(x != null);
          }
        }
    """)
    (block,) = blocks_of_proc(proc)
    assert block.condition == frozenset({("!=", None)})


def test_complementary_atoms():
    assert complementary(("==", None), ("!=", None))
    assert not complementary(("==", None), ("==", None))
    assert complementary(("==", 1), ("==", 2))
    assert not complementary(("!=", 1), ("!=", 2))


def test_condition_excludes():
    p = frozenset({("==", None)})
    not_p = frozenset({("!=", None)})
    assert condition_excludes(not_p, p)
    assert not condition_excludes(p, p)
    assert not condition_excludes(frozenset(), p)
