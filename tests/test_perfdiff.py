"""Differential profiling: side construction from every operand form
(profile docs, bench records, folded files, ledger runs), the ranked
attribution document, the increase-only drift gate, and the rendered
table — plus schema validation, so ``perf diff --json`` output stays
machine-checkable."""

from __future__ import annotations

import json

import pytest

from repro.obs import ledger
from repro.obs.export import (PERFDIFF_SCHEMA, bench_record, validate,
                              write_bench)
from repro.obs.perfdiff import (DEFAULT_THRESHOLD, WORK_FLOOR,
                                attribute, diff_specs, group_of,
                                render_attribution, resolve_side,
                                side_from_folded, side_from_profile_doc,
                                side_from_records)


def _side(label, counters, wall=None):
    return {"label": label,
            "counters": {name: {"calls": c, "work": w}
                         for name, (c, w) in counters.items()},
            "wall": dict(wall or {}), "folded": {}}


# -- grouping ----------------------------------------------------------------------

def test_group_of_prefixes():
    assert group_of("mc.successors") == "explorer"
    assert group_of("theorem.5.3") == "theorem"
    assert group_of("lint.checker.aba_discipline") == "lint-rule"
    assert group_of("analysis.classify") == "analysis-pass"
    assert group_of("summary.lookup") == "summary-cache"
    assert group_of("parse.tokens") == "other"


# -- attribution ranking and the drift gate ----------------------------------------

def test_rows_ranked_by_absolute_delta():
    a = _side("a", {"mc.successors": (0, 1000),
                    "mc.dedup": (0, 500),
                    "theorem.5.3": (0, 100)})
    b = _side("b", {"mc.successors": (0, 1400),   # +400
                    "mc.dedup": (0, 1200),        # +700
                    "theorem.5.3": (0, 90)})      # -10
    report = attribute(a, b)
    assert [r["name"] for r in report["rows"]] == \
        ["mc.dedup", "mc.successors", "theorem.5.3"]


def test_growth_past_threshold_gates():
    a = _side("a", {"mc.successors": (0, 1000)})
    b = _side("b", {"mc.successors": (0, 1400)})
    report = attribute(a, b)                      # +40% > 25%
    assert report["drift"] is True
    assert report["drifted"] == ["mc.successors"]


def test_shrinking_work_never_gates():
    # a speedup is not a regression, mirroring the watchdog
    a = _side("a", {"mc.successors": (0, 1400)})
    b = _side("b", {"mc.successors": (0, 100)})
    report = attribute(a, b)
    assert report["drift"] is False


def test_work_floor_suppresses_tiny_absolute_deltas():
    # +100% relative, but only +8 units: below WORK_FLOOR
    a = _side("a", {"theorem.5.5": (0, 8)})
    b = _side("b", {"theorem.5.5": (0, 16)})
    assert attribute(a, b)["drift"] is False
    big = _side("b", {"theorem.5.5": (0, 8 + WORK_FLOOR + 1)})
    assert attribute(a, big)["drift"] is True


def test_identical_sides_have_zero_drift():
    a = _side("a", {"mc.successors": (10, 1000), "mc.dedup": (5, 40)})
    report = attribute(a, dict(a, label="b"))
    assert report["drift"] is False
    assert all(r["delta"] == 0 for r in report["rows"])


def test_new_region_counts_as_full_growth():
    a = _side("a", {})
    b = _side("b", {"mc.por_ample": (0, 500)})
    (row,) = attribute(a, b)["rows"]
    assert row["units_a"] == 0 and row["drift"] is True


def test_groups_aggregate_units():
    a = _side("a", {"mc.successors": (0, 1000), "mc.dedup": (0, 500),
                    "theorem.5.3": (0, 100)})
    b = _side("b", {"mc.successors": (0, 1200), "mc.dedup": (0, 700),
                    "theorem.5.3": (0, 100)})
    groups = attribute(a, b)["groups"]
    assert groups["explorer"]["delta"] == 400
    assert groups["theorem"]["delta"] == 0


def test_attribution_document_validates():
    a = _side("a", {"mc.successors": (3, 1000)}, {"mc.successors": 0.1})
    b = _side("b", {"mc.successors": (3, 1400)}, {"mc.successors": 0.2})
    report = attribute(a, b)
    assert validate(report, PERFDIFF_SCHEMA) == []


# -- side builders -----------------------------------------------------------------

def test_side_from_profile_doc():
    doc = {"v": 1, "hotspots": [
        {"name": "mc.successors", "calls": 3, "work": 90,
         "wall_s": 0.01, "share": 0.9}],
        "folded": {"mc.run;mc.successors": 0.01}}
    side = side_from_profile_doc("x", doc)
    assert side["counters"]["mc.successors"] == {"calls": 3, "work": 90}
    assert side["wall"]["mc.successors"] == 0.01
    assert side["folded"] == {"mc.run;mc.successors": 0.01}


def test_side_from_records_sums_counters():
    records = [
        {"name": "mc/a", "wall_s": 0.1,
         "counters": {"mc.successors": {"calls": 1, "work": 10}}},
        {"name": "mc/b", "wall_s": 0.2,
         "counters": {"mc.successors": {"calls": 2, "work": 20}}}]
    side = side_from_records("x", records)
    assert side["counters"]["mc.successors"] == \
        {"calls": 3, "work": 30}
    assert side["wall"] == {"mc/a": 0.1, "mc/b": 0.2}


def test_side_from_folded_usecs_to_seconds():
    side = side_from_folded("x", {"mc.run;mc.successors": 2_000_000})
    assert side["folded"]["mc.run;mc.successors"] == 2.0
    # leaf frame gets the wall attribution
    assert side["wall"]["mc.successors"] == 2.0


# -- operand resolution ------------------------------------------------------------

def test_resolve_side_bench_dir(tmp_path):
    rec = bench_record("mc/x", 0.1, states=10, transitions=20)
    rec["counters"] = {"mc.successors": {"calls": 1, "work": 10}}
    write_bench(tmp_path / "BENCH_mc.json", [rec])
    side = resolve_side(str(tmp_path))
    assert side["counters"]["mc.successors"]["work"] == 10


def test_resolve_side_collapsed_stack_file(tmp_path):
    path = tmp_path / "profile.folded"
    path.write_text("mc.run;mc.successors 1500000\n")
    side = resolve_side(str(path))
    assert side["folded"]["mc.run;mc.successors"] == 1.5


def test_resolve_side_unknown_operand_raises(tmp_path):
    with pytest.raises(ValueError):
        resolve_side(str(tmp_path / "nope"), root=tmp_path / "runs")


def test_resolve_side_ledger_run(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "runs"))
    rec = ledger.start(["analyze", "x.synl"], "analyze")
    rec.add_artifact("profile.json", {
        "v": 1, "hotspots": [
            {"name": "analysis.classify", "calls": 1, "work": 7,
             "wall_s": 0.001, "share": 1.0}]})
    rec.finish(0, "ok")
    side = resolve_side("last", root=tmp_path / "runs")
    assert side["counters"]["analysis.classify"]["work"] == 7
    assert side["label"].startswith("ledger:")


# -- rendering ---------------------------------------------------------------------

def test_render_names_drifted_regions():
    a = _side("a", {"mc.successors": (0, 1000), "mc.dedup": (0, 400)})
    b = _side("b", {"mc.successors": (0, 1400), "mc.dedup": (0, 390)})
    text = render_attribution(attribute(a, b))
    assert "DRIFT: 1 region(s) grew past +25%: mc.successors" in text
    assert "+40.0%" in text and "-2.5%" in text


def test_render_clean_diff_says_so():
    a = _side("a", {"mc.successors": (0, 1000)})
    text = render_attribution(attribute(a, dict(a, label="b")))
    assert "no attributed drift" in text


def test_diff_specs_end_to_end(tmp_path):
    for name, work in (("a", 1000), ("b", 1600)):
        rec = bench_record("mc/x", 0.1, states=10, transitions=20)
        rec["counters"] = {"mc.successors": {"calls": 0, "work": work}}
        write_bench(tmp_path / name / "BENCH_mc.json", [rec])
    report = diff_specs(str(tmp_path / "a"), str(tmp_path / "b"),
                        threshold=DEFAULT_THRESHOLD)
    assert report["drift"] is True
    assert validate(report, PERFDIFF_SCHEMA) == []
