"""Corpus-wide matrix: every program parses, resolves, executes, and
gets the expected analysis verdict."""

import pytest

from repro import corpus
from repro.analysis import analyze_program
from repro.interp import Interp, ThreadSpec, run_random
from repro.synl.resolve import load_program

#: program -> {procedure: expected atomicity verdict}
VERDICTS = {
    "NFQ": (corpus.NFQ, {"Enq": False, "Deq": False}),
    "NFQ_PRIME": (corpus.NFQ_PRIME,
                  {"AddNode": True, "UpdateTail": True, "DeqP": True}),
    "NFQ_PRIME_BUGGY": (corpus.NFQ_PRIME_BUGGY,
                        {"AddNode": True, "UpdateTail": True,
                         "DeqP": False}),
    "HERLIHY_SMALL": (corpus.HERLIHY_SMALL,
                      {"Apply": True, "ReadValue": True}),
    "GH_PROGRAM1": (corpus.GH_PROGRAM1, {"Apply": True}),
    "GH_PROGRAM2": (corpus.GH_PROGRAM2, {"Apply": False}),
    "GH_FULL": (corpus.GH_FULL, {"Apply": False}),
    "GH_FULL_FIXED": (corpus.GH_FULL_FIXED, {"Apply": False}),
    "ALLOCATOR": (corpus.ALLOCATOR,
                  {name: False for name in
                   ("MallocFromActive", "MallocFromPartial",
                    "MallocFromNewSB", "UpdateActive", "DescAlloc",
                    "HeapPutPartial")}),
    "CAS_COUNTER": (corpus.CAS_COUNTER, {"Inc": True, "Get": True}),
    "SEMAPHORE": (corpus.SEMAPHORE, {"Down": True, "Up": True}),
    "SPIN_LOCK": (corpus.SPIN_LOCK,
                  {"Acquire": True, "Release": True}),
    "TREIBER_STACK": (corpus.TREIBER_STACK,
                      {"Push": True, "Pop": True}),
    "LOCKED_REGISTER": (corpus.LOCKED_REGISTER,
                        {"Write": True, "Read": True}),
    "VERSIONED_CELL": (corpus.VERSIONED_CELL,
                       {"IncCell": True, "GetCell": True}),
}


@pytest.mark.parametrize("name", sorted(VERDICTS))
def test_parses_and_resolves(name):
    source, _ = VERDICTS[name]
    program = load_program(source)
    assert program.procs


@pytest.mark.parametrize("name", sorted(VERDICTS))
def test_analysis_verdicts(name):
    source, expected = VERDICTS[name]
    result = analyze_program(source)
    got = {proc: result.is_atomic(proc) for proc in expected}
    assert got == expected


SMOKE_CALLS = {
    "NFQ": [("Enq", 1), ("Deq",)],
    # DeqP relies on the UpdateTail helper to advance a lagging Tail
    "NFQ_PRIME": [("AddNode", 1), ("UpdateTail",), ("DeqP",)],
    "HERLIHY_SMALL": [("Apply", 2), ("ReadValue",)],
    "GH_PROGRAM1": [("Apply", 1)],
    "GH_PROGRAM2": [("Apply", 1)],
    "GH_FULL": [("Apply", 1)],
    "GH_FULL_FIXED": [("Apply", 1)],
    "ALLOCATOR": [("MallocFromNewSB",), ("MallocFromActive",)],
    "CAS_COUNTER": [("Inc",), ("Get",)],
    "SEMAPHORE": [("Down",), ("Up",)],
    "SPIN_LOCK": [("Acquire",), ("Release",)],
    "TREIBER_STACK": [("Push", 1), ("Pop",)],
    "LOCKED_REGISTER": [("Write", 1), ("Read",)],
    "VERSIONED_CELL": [("IncCell",), ("GetCell",)],
}


@pytest.mark.parametrize("name", sorted(SMOKE_CALLS))
def test_executes_under_interpreter(name):
    source, _ = VERDICTS[name]
    interp = Interp(source)
    world = interp.make_world([ThreadSpec.of(*SMOKE_CALLS[name])])
    run_random(interp, world, seed=1, max_steps=50_000)
    assert all(t.done for t in world.threads)


def test_versioned_cell_counts_correctly():
    interp = Interp(corpus.VERSIONED_CELL)
    world = interp.make_world([
        ThreadSpec.of(("IncCell",), ("IncCell",)),
        ThreadSpec.of(("IncCell",), ("GetCell",)),
    ])
    run_random(interp, world, seed=4, max_steps=50_000)
    gets = [e.result for e in world.history
            if e.kind == "return" and e.proc == "GetCell"]
    cell = world.heap.get(world.globals["C"])
    assert cell.fields["V"] == 3
    assert all(0 <= g <= 3 for g in gets)


def test_versioned_cell_requires_class_annotation():
    raw = corpus.VERSIONED_CELL.replace("versioned V;", "V;")
    result = analyze_program(raw)
    assert not result.is_atomic("IncCell")


def test_gh_full_fixed_differs_only_in_reset():
    plain = corpus.GH_FULL.strip().splitlines()
    fixed = corpus.GH_FULL_FIXED.strip().splitlines()
    diff = [(a, b) for a, b in zip(plain, fixed) if a != b]
    assert len(diff) == 1
    assert "version[g] = 0" in diff[0][0]
    assert "0 - 1" in diff[0][1]
