"""Printer round-trip: parse(pretty(x)) is structurally equal to x —
checked on the whole corpus and property-tested on generated ASTs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import corpus
from repro.synl import ast as A
from repro.synl.parser import parse_expr, parse_program, parse_stmt
from repro.synl.printer import pretty, pretty_expr, pretty_stmt

ALL_SOURCES = [
    corpus.NFQ, corpus.NFQ_PRIME, corpus.NFQ_PRIME_BUGGY,
    corpus.HERLIHY_SMALL, corpus.GH_PROGRAM1, corpus.GH_PROGRAM2,
    corpus.GH_FULL, corpus.GH_FULL_FIXED, corpus.ALLOCATOR,
    corpus.CAS_COUNTER, corpus.SEMAPHORE, corpus.SPIN_LOCK,
    corpus.TREIBER_STACK, corpus.LOCKED_REGISTER,
]


@pytest.mark.parametrize("source", ALL_SOURCES,
                         ids=lambda s: s.strip().splitlines()[0][:25])
def test_corpus_roundtrip(source):
    prog = parse_program(source)
    again = parse_program(pretty(prog))
    assert A.structural_eq(prog, again)


@pytest.mark.parametrize("source", ALL_SOURCES,
                         ids=lambda s: s.strip().splitlines()[0][:25])
def test_corpus_pretty_is_stable(source):
    prog = parse_program(source)
    once = pretty(prog)
    twice = pretty(parse_program(once))
    assert once == twice


# -- generated expression round trips ------------------------------------------

_names = st.sampled_from(["x", "y", "Tail", "next", "prv"])


def _exprs():
    leaves = st.one_of(
        st.integers(min_value=0, max_value=99).map(A.Const),
        st.booleans().map(A.Const),
        st.just(None).map(A.Const),
        _names.map(A.Var),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(["+", "-", "*", "==", "!=", "<",
                                       "&&", "||"]),
                      children, children).map(
                lambda t: A.Binary(t[0], t[1], t[2])),
            st.tuples(st.sampled_from(["!", "-"]), children).map(
                lambda t: A.Unary(t[0], t[1])),
            st.tuples(_names.map(A.Var),
                      st.sampled_from(["fd", "Next"])).map(
                lambda t: A.Field(t[0], t[1])),
            _names.map(lambda n: A.LLExpr(A.Var(n))),
            st.tuples(_names.map(A.Var), children).map(
                lambda t: A.SCExpr(t[0], t[1])),
        )

    return st.recursive(leaves, extend, max_leaves=12)


@given(_exprs())
@settings(max_examples=200, deadline=None)
def test_generated_expr_roundtrip(expr):
    text = pretty_expr(expr)
    again = parse_expr(text)
    assert A.structural_eq(expr, again), text


def _stmts():
    exprs = _exprs()
    leaves = st.one_of(
        st.just(A.Skip()),
        st.builds(A.Break),
        st.builds(A.Continue),
        st.tuples(_names.map(A.Var), exprs).map(
            lambda t: A.Assign(t[0], t[1])),
        exprs.map(lambda e: A.Return(e)),
        exprs.map(A.Assume),
    )

    def extend(children):
        return st.one_of(
            st.lists(children, min_size=0, max_size=3).map(A.Block),
            st.tuples(exprs, children).map(
                lambda t: A.If(t[0], t[1], None)),
            st.tuples(exprs, children, children).map(
                lambda t: A.If(t[0], t[1], t[2])),
            children.map(lambda s: A.Loop(A.Block([s]))),
            st.tuples(_names, exprs, children).map(
                lambda t: A.LocalDecl(t[0], t[1], t[2])),
        )

    return st.recursive(leaves, extend, max_leaves=10)


@given(_stmts())
@settings(max_examples=150, deadline=None)
def test_generated_stmt_roundtrip(stmt):
    text = pretty_stmt(stmt)
    again = parse_stmt(text)
    assert A.structural_eq(stmt, again), text
