"""End-to-end atomicity inference (§5.4): corpus verdicts, the Figure 3
and Figure 4 golden labels, and the option switches."""

from dataclasses import replace

import pytest

from repro import corpus
from repro.analysis import InferenceOptions, analyze_program
from repro.analysis.report import line_atomicities


# -- verdicts ----------------------------------------------------------------------

def test_nfq_prime_all_atomic(nfq_prime_analysis):
    assert nfq_prime_analysis.atomic_procedures() == [
        "AddNode", "UpdateTail", "DeqP"]


def test_nfq_unmodified_not_provable(nfq_analysis):
    """The paper must modify NFQ into NFQ' before the analysis applies
    (§6.1): the helping updates to Tail make the loops impure."""
    assert not nfq_analysis.is_atomic("Enq")
    assert not nfq_analysis.is_atomic("Deq")


def test_herlihy_atomic(herlihy_analysis):
    assert herlihy_analysis.is_atomic("Apply")


def test_gh_program1_atomic(gh1_analysis):
    assert gh1_analysis.is_atomic("Apply")


def test_gh_program2_and_full_not_directly_provable():
    assert not analyze_program(corpus.GH_PROGRAM2).is_atomic("Apply")
    assert not analyze_program(corpus.GH_FULL).is_atomic("Apply")


def test_treiber_atomic(treiber_analysis):
    assert treiber_analysis.is_atomic("Push")
    assert treiber_analysis.is_atomic("Pop")


def test_cas_counter_atomic_only_with_version_discipline():
    assert analyze_program(corpus.CAS_COUNTER).is_atomic("Inc")
    raw = corpus.CAS_COUNTER.replace("global versioned Counter;",
                                     "global Counter;")
    assert not analyze_program(raw).is_atomic("Inc")


def test_semaphore_and_spinlock_atomic():
    sem = analyze_program(corpus.SEMAPHORE)
    assert sem.is_atomic("Down") and sem.is_atomic("Up")
    lock = analyze_program(corpus.SPIN_LOCK)
    assert lock.is_atomic("Acquire") and lock.is_atomic("Release")


def test_locked_register_atomic_via_thm51():
    reg = analyze_program(corpus.LOCKED_REGISTER)
    assert reg.is_atomic("Write") and reg.is_atomic("Read")


LOCKED_INCR = """
class LockObj { unused; }
global Lk;
global Val;
init { Lk = new LockObj; Val = 0; }
proc Incr() {
  synchronized (Lk) {
    Val = Val + 1;
  }
}
proc Read() {
  %s
}
"""

_SYNC_READ = ("synchronized (Lk) { local v = Val in { return v; } }")
_RAW_READ = ("local v = Val in { return v; }")


def test_locked_read_modify_write_atomic_via_thm51():
    result = analyze_program(LOCKED_INCR % _SYNC_READ)
    assert result.is_atomic("Incr")


def test_single_writer_with_raw_readers_still_atomic():
    """Raw readers don't break the lone locked writer: its read half is
    a both-mover (all conflicting writes hold the lock) and the write is
    the commit point — R;B;A;L reduces."""
    result = analyze_program(LOCKED_INCR % _RAW_READ)
    assert result.is_atomic("Incr")


def test_unlocked_read_modify_write_not_atomic():
    """Drop the lock entirely: two concurrent Incrs interfere on both
    halves of Val = Val + 1, and A;A composes to N."""
    source = (LOCKED_INCR % _RAW_READ).replace(
        "synchronized (Lk) {\n    Val = Val + 1;\n  }",
        "Val = Val + 1;")
    result = analyze_program(source)
    assert not result.is_atomic("Incr")


def test_allocator_procedures_not_atomic_as_wholes(allocator_analysis):
    assert allocator_analysis.atomic_procedures() == []


def test_buggy_nfq_prime_addnode_still_atomic():
    """Atomicity is independent of functional correctness: the lost-node
    AddNode is still atomic (Table 2 runs it with the declarations)."""
    result = analyze_program(corpus.NFQ_PRIME_BUGGY)
    assert result.is_atomic("AddNode")
    assert result.is_atomic("UpdateTail")
    # DeqP loses Theorem 5.5's uniform-condition premise (the LL-SC
    # block on t.Next no longer asserts next == null)
    assert not result.is_atomic("DeqP")


# -- Figure 3 golden labels ------------------------------------------------------------

FIG3 = {
    "AddNode": list("BBBRRBBLB"),
    "UpdateTail1": list("RRBBLB"),
    "DeqP1": list("RALBB"),
    "DeqP2": list("RRBBABLB"),
}


@pytest.mark.parametrize("variant", sorted(FIG3))
def test_figure3_labels(nfq_prime_analysis, variant):
    labels = [a for _, a in line_atomicities(nfq_prime_analysis, variant)]
    assert labels == FIG3[variant]


def test_updatetail_failure_variant_read_only(nfq_prime_analysis):
    reports = nfq_prime_analysis.verdicts["UpdateTail"].variants
    failure = next(r for r in reports if r.variant.name == "UpdateTail2")
    assert failure.read_only


def test_figure4_labels(herlihy_analysis):
    labels = [a for _, a in line_atomicities(herlihy_analysis, "Apply")]
    assert labels == list("RBBBLBB")


# -- option switches ---------------------------------------------------------------------

def _with(source, **overrides):
    return analyze_program(source,
                           replace(InferenceOptions(), **overrides))


def test_without_purity_nothing_nonblocking_verifies():
    result = _with(corpus.NFQ_PRIME, enable_purity=False)
    assert result.atomic_procedures() == []


def test_without_windows_nothing_nonblocking_verifies():
    result = _with(corpus.NFQ_PRIME, enable_windows=False)
    assert result.atomic_procedures() == []


def test_without_conditions_deqp2_loses_atomicity():
    result = _with(corpus.NFQ_PRIME, enable_conditions=False)
    assert not result.is_atomic("DeqP")
    assert result.is_atomic("AddNode")  # window rules still carry it


def test_without_uniqueness_herlihy_fails():
    result = _with(corpus.HERLIHY_SMALL, enable_uniqueness=False)
    assert not result.is_atomic("Apply")


def test_without_agreement_verdicts_hold_but_a6_label_weakens():
    result = _with(corpus.NFQ_PRIME, enable_agreement=False)
    assert result.is_atomic("AddNode")
    labels = [a for _, a in line_atomicities(result, "AddNode")]
    assert labels[5] == "L"  # a6 stays a left-mover instead of B


def test_locks_only_configuration_still_proves_locked_register():
    result = _with(
        corpus.LOCKED_REGISTER, enable_purity=False,
        enable_windows=False, enable_conditions=False,
        enable_uniqueness=False, enable_agreement=False)
    assert result.is_atomic("Write") and result.is_atomic("Read")


# -- assumption diagnostics -----------------------------------------------------------------

def test_multiple_matching_lls_reported():
    result = analyze_program("""
        global G;
        proc P(v) {
          loop {
            local t = 0 in {
              if (v == 0) { t = LL(G); } else { t = LL(G); }
              if (SC(G, t + 1)) { return; }
            }
          }
        }
    """)
    assert any("matching" in d for d in result.diagnostics)
