"""Remaining behaviours: locks inside pure loops, ghost-state splitting
in the explorer, report error paths, spec parsing in the CLI."""

import pytest

from repro.analysis import analyze_program
from repro.analysis.report import line_atomicities
from repro.cli import _parse_spec
from repro.interp import Interp, ThreadSpec
from repro.mc import Explorer, QueueContents


def test_synchronized_inside_pure_loop_allowed():
    """Theorem 4.1: acquire/release pairs in normally terminating
    iterations are fine — the iteration can still be deleted."""
    source = """
    class LockObj { unused; }
    global Lk; global G;
    init { Lk = new LockObj; G = 0; }
    proc P() {
      loop {
        local seen = 0 in {
          synchronized (Lk) {
            seen = G;
          }
          if (seen == 1) { return; }
        }
      }
    }
    """
    result = analyze_program(source)
    purity = result.purity["P"]
    assert all(info.pure for info in purity.values())
    assert result.is_atomic("P")


def test_write_under_lock_in_normal_iteration_still_impure():
    source = """
    class LockObj { unused; }
    global Lk; global G;
    init { Lk = new LockObj; G = 0; }
    proc P() {
      loop {
        synchronized (Lk) { G = G + 1; }
        if (G > 3) { return; }
      }
    }
    """
    result = analyze_program(source)
    purity = result.purity["P"]
    assert not all(info.pure for info in purity.values())


def test_ghost_state_distinguishes_exploration_states():
    """Two worlds with equal concrete state but different completed
    operations must not merge (the ghost is part of the key)."""
    source = """
    class Node { Value; Next; }
    global Head; global Tail;
    init {
      local d = new Node in { d.Next = null; Head = d; Tail = d; }
    }
    proc AddNode(v) {
      local t = Tail in
      local n = new Node in {
        n.Value = v;
        n.Next = null;
        t.Next = n;
        Tail = n;
      }
    }
    proc DeqP() {
      local h = Head in
      local next = h.Next in {
        if (next == null) { return -1; }
        Head = next;
        return next.Value;
      }
    }
    """
    interp = Interp(source)
    specs = [ThreadSpec.of(("AddNode", 1), ("DeqP",))]
    with_prop = Explorer(interp, specs, mode="atomic",
                         properties=[QueueContents()]).run()
    without = Explorer(interp, specs, mode="atomic").run()
    assert with_prop.violation is None
    assert with_prop.states >= without.states


def test_line_atomicities_unknown_variant():
    result = analyze_program("global G; proc P() { G = 1; }")
    with pytest.raises(KeyError):
        line_atomicities(result, "Nope")


def test_parse_spec_forms():
    spec = _parse_spec("Enq(1),Deq()")
    assert spec.ops == (("Enq", (1,)), ("Deq", ()))
    assert not spec.repeat
    spec = _parse_spec("UpdateTail()*")
    assert spec.ops == (("UpdateTail", ()),) and spec.repeat
    spec = _parse_spec("P(1,2)")
    assert spec.ops == (("P", (1, 2)),)


def test_analysis_result_render_roundtrip(nfq_prime_analysis):
    """render_figure output is itself parseable SYNL statement text for
    the simple lines (sanity on the report format)."""
    from repro.synl.parser import parse_stmt

    for variant_name in ("AddNode", "UpdateTail1"):
        for text, _ in line_atomicities(nfq_prime_analysis,
                                        variant_name):
            if text.endswith(";") and not text.startswith("local"):
                parse_stmt(text)  # should not raise


def test_variant_exit_labels_human_readable(nfq_prime_analysis):
    exits = [v.variant.exits
             for v in nfq_prime_analysis.verdicts["DeqP"].variants]
    flat = {label for d in exits for label in d.values()}
    assert flat == {"return EMPTY", "return value"}


def test_explorer_rejects_unknown_mode():
    interp = Interp("global G; proc P() { G = 1; }")
    with pytest.raises(ValueError):
        Explorer(interp, [ThreadSpec.of(("P",))], mode="warp")
