"""Dataflow framework and liveness tests (with a path-enumeration
oracle on small CFGs)."""

from repro.analysis.actions import node_actions
from repro.cfg import build_cfg, liveness
from repro.cfg.graph import NodeKind
from repro.synl.resolve import load_program


def _cfg(body, params=""):
    prog = load_program(f"global G; proc P({params}) {{ {body} }}")
    return build_cfg(prog.proc("P"))


def _uses_defs(node):
    uses, defs = set(), set()
    for action in node_actions(node):
        if action.target is None or action.target.kind != "var":
            continue
        if action.op == "read":
            uses.add(action.target.binding)
        elif action.op == "write":
            defs.add(action.target.binding)
    return frozenset(uses), frozenset(defs)


def _liveness(cfg):
    return liveness(cfg, lambda n: _uses_defs(n)[0],
                    lambda n: _uses_defs(n)[1])


def _binding(cfg, name):
    from repro.synl import ast as A

    for node in cfg.nodes:
        if node.kind is NodeKind.BIND and node.stmt.name == name:
            return node.stmt.binding
    raise KeyError(name)


def test_dead_after_last_use():
    cfg = _cfg("local x = 1 in { G = x; G = 2; }")
    x = _binding(cfg, "x")
    live = _liveness(cfg)
    uses = [n for n in cfg.nodes if x in _uses_defs(n)[0]]
    (use,) = uses
    assert x in live.live_in(use)
    assert x not in live.live_out(use)


def test_live_through_branch_join():
    cfg = _cfg("local x = 1 in { if (G == 1) { G = 2; } G = x; }")
    x = _binding(cfg, "x")
    live = _liveness(cfg)
    branch = next(n for n in cfg.nodes if n.kind is NodeKind.BRANCH)
    assert x in live.live_out(branch)


def test_redefinition_kills_liveness():
    cfg = _cfg("local x = 1 in { x = 2; G = x; }")
    x = _binding(cfg, "x")
    live = _liveness(cfg)
    bind = next(n for n in cfg.nodes if n.kind is NodeKind.BIND)
    # after the bind, x is dead: it is rewritten before the read
    assert x not in live.live_out(bind)


def test_loop_carried_liveness():
    cfg = _cfg("local i = 0 in loop { if (i > 3) { break; } i = i + 1; }")
    i = _binding(cfg, "i")
    live = _liveness(cfg)
    head = cfg.loops[0].head
    assert i in live.live_in(head)


def test_liveness_matches_path_enumeration_oracle():
    cfg = _cfg("""
      local a = 1 in
      local b = 2 in {
        if (G == 1) { G = a; } else { G = 2; }
        G = b;
      }
    """)
    live = _liveness(cfg)

    # oracle: DFS over paths, bounded unrolling
    def oracle_live(start, binding):
        stack = [(start, 0)]
        seen = set()
        while stack:
            node, depth = stack.pop()
            if depth > 50:
                continue
            uses, defs = _uses_defs(node)
            if binding in uses:
                return True
            if binding in defs:
                continue
            if (node.uid, depth > 10) in seen:
                continue
            seen.add((node.uid, depth > 10))
            for nxt in cfg.successors(node):
                stack.append((nxt, depth + 1))
        return False

    a, b = _binding(cfg, "a"), _binding(cfg, "b")
    for node in cfg.nodes:
        for binding in (a, b):
            expected = any(oracle_live(succ, binding)
                           for succ in cfg.successors(node))
            assert (binding in live.live_out(node)) == expected, \
                (node, binding)


def test_nothing_live_at_exit():
    cfg = _cfg("local x = 1 in { G = x; }")
    live = _liveness(cfg)
    assert live.live_out(cfg.exit) == frozenset()
