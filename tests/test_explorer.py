"""Model-checker tests: determinism, violations, caps, and the central
soundness property — reduced explorations reach exactly the quiescent
states of the full one (the operational content of Theorem 5.2)."""

import pytest

from repro import corpus
from repro.interp import Interp, ThreadSpec
from repro.mc import Explorer, QueueContents, QueueShape

TINY = """
global G;
init { G = 0; }
proc Inc() {
  loop {
    local t = LL(G) in {
      if (SC(G, t + 1)) { return; }
    }
  }
}
proc Set(v) { G = v; }
"""


def _explore(source, specs, mode, **kw):
    interp = Interp(source)
    return Explorer(interp, specs, mode=mode, **kw).run()


def test_state_count_deterministic():
    specs = [ThreadSpec.of(("Inc",)), ThreadSpec.of(("Inc",))]
    a = _explore(TINY, specs, "full")
    b = _explore(TINY, specs, "full")
    assert (a.states, a.transitions) == (b.states, b.transitions)


def test_single_thread_linear_exploration():
    r = _explore(TINY, [ThreadSpec.of(("Set", 5))], "full")
    assert r.states == r.transitions + 1  # a simple chain


def test_atomic_mode_counts_op_granularity():
    specs = [ThreadSpec.of(("Inc",)), ThreadSpec.of(("Inc",))]
    r = _explore(TINY, specs, "atomic", collect_quiescent=True)
    # op-granularity states only (stale reservations keep a little
    # per-thread residue, so slightly more than the 4 shared shapes)
    assert r.states <= 6
    assert len(r.quiescent) <= 6
    assert r.violation is None


@pytest.mark.parametrize("mode", ["por", "atomic"])
def test_reductions_preserve_quiescent_states(mode):
    specs = [ThreadSpec.of(("Inc",)), ThreadSpec.of(("Inc",)),
             ThreadSpec.of(("Set", 7))]
    full = _explore(TINY, specs, "full", collect_quiescent=True)
    reduced = _explore(TINY, specs, mode, collect_quiescent=True)
    assert reduced.quiescent == full.quiescent
    assert reduced.states <= full.states


def test_reductions_preserve_quiescent_states_nfq():
    specs = [
        ThreadSpec.of(("AddNode", 1)),
        ThreadSpec.of(("DeqP",), ("DeqP",)),
        ThreadSpec.of(("UpdateTail",), repeat=True),
    ]
    interp = Interp(corpus.NFQ_PRIME)
    full = Explorer(interp, specs, mode="full",
                    collect_quiescent=True).run()
    atomic = Explorer(interp, specs, mode="atomic",
                      collect_quiescent=True).run()
    por = Explorer(interp, specs, mode="por",
                   collect_quiescent=True).run()
    assert atomic.quiescent == full.quiescent
    assert por.quiescent == full.quiescent
    assert atomic.states < full.states / 50


def test_both_mode_preserves_final_states():
    from repro.experiments.section63 import commutes

    interp = Interp(corpus.GH_PROGRAM1)
    specs = [ThreadSpec.of(("Apply", 1)), ThreadSpec.of(("Apply", 2))]
    full = Explorer(interp, specs, mode="full",
                    collect_quiescent=True).run()
    both = Explorer(interp, specs, mode="both", commutes=commutes,
                    collect_quiescent=True).run()
    assert both.final_shared == full.final_shared
    assert both.final <= full.final
    assert both.states < full.states


def test_violation_found_with_trace():
    bad = TINY + "proc Boom() { assert(G == 99); }"
    r = _explore(bad, [ThreadSpec.of(("Boom",))], "full")
    assert r.violation is not None
    assert "assertion" in r.violation
    assert r.trace


def test_queue_property_violation_in_buggy_nfq():
    specs = [
        ThreadSpec.of(("AddNode", 1)),
        ThreadSpec.of(("AddNode", 2)),
        ThreadSpec.of(("UpdateTail",), repeat=True),
    ]
    interp = Interp(corpus.NFQ_PRIME_BUGGY)
    props = [QueueShape(), QueueContents()]
    for mode in ("full", "atomic"):
        r = Explorer(interp, specs, mode=mode, properties=props).run()
        assert r.violation is not None, mode
        assert "lost or duplicated" in r.violation


def test_correct_nfq_passes_properties_in_atomic_mode():
    specs = [
        ThreadSpec.of(("AddNode", 1)),
        ThreadSpec.of(("AddNode", 2)),
        ThreadSpec.of(("DeqP",)),
        ThreadSpec.of(("UpdateTail",), repeat=True),
    ]
    interp = Interp(corpus.NFQ_PRIME)
    r = Explorer(interp, specs, mode="atomic",
                 properties=[QueueShape(), QueueContents()]).run()
    assert r.violation is None


def test_state_cap_reported():
    specs = [ThreadSpec.of(("Inc",)), ThreadSpec.of(("Inc",)),
             ThreadSpec.of(("Inc",))]
    r = _explore(TINY, specs, "full", max_states=10)
    assert r.capped and r.states == 10


def test_atomic_disabled_spinning_operation():
    """A helper that can never commit (UpdateTail on an up-to-date
    queue) contributes no transitions in atomic mode."""
    interp = Interp(corpus.NFQ_PRIME)
    specs = [ThreadSpec.of(("UpdateTail",), repeat=True)]
    r = Explorer(interp, specs, mode="atomic").run()
    assert r.states == 1 and r.transitions == 0


def test_variant_mode_matches_run_to_commit():
    from repro.analysis import analyze_program

    analysis = analyze_program(corpus.NFQ_PRIME)
    vprog = analysis.variant_set.program
    variant_interp = Interp(vprog)
    variant_map = {src: [v.name for v in vs]
                   for src, vs in analysis.variant_set.by_source.items()}
    interp = Interp(corpus.NFQ_PRIME)
    specs = [
        ThreadSpec.of(("AddNode", 1)),
        ThreadSpec.of(("DeqP",)),
        ThreadSpec.of(("UpdateTail",), repeat=True),
    ]
    rtc = Explorer(interp, specs, mode="atomic",
                   collect_quiescent=True).run()
    var = Explorer(interp, specs, mode="atomic",
                   variant_interp=variant_interp,
                   variant_map=variant_map,
                   collect_quiescent=True).run()
    assert var.quiescent == rtc.quiescent


# -- deadline: graceful soft-timeout -----------------------------------------------

def test_deadline_zero_stops_immediately_with_telemetry():
    specs = [ThreadSpec.of(("Inc",)), ThreadSpec.of(("Inc",)),
             ThreadSpec.of(("Inc",))]
    r = _explore(TINY, specs, "full", deadline=0.0)
    assert r.deadline_hit and not r.capped and r.violation is None
    # the stop is graceful: partial counts and telemetry survive
    assert r.states >= 1
    assert r.metrics["mc.deadline_hit"] is True
    assert "mc.depth_hist" in r.metrics
    assert "UNKNOWN (deadline)" in str(r)


def test_generous_deadline_never_fires():
    specs = [ThreadSpec.of(("Inc",)), ThreadSpec.of(("Inc",))]
    r = _explore(TINY, specs, "full", deadline=3600.0)
    assert not r.deadline_hit
    assert r.metrics["mc.deadline_hit"] is False
    assert "UNKNOWN" not in str(r)
    # and the default (no deadline) matches the deadline-free counts
    plain = _explore(TINY, specs, "full")
    assert (r.states, r.transitions) == (plain.states, plain.transitions)


def test_deadline_emits_event():
    from repro.obs.events import EventStream

    # three threads: enough loop iterations to reach the clock-check
    # stride (a sub-stride search finishes before the soft deadline
    # is ever consulted — that is the documented semantics)
    events = EventStream()
    specs = [ThreadSpec.of(("Inc",)), ThreadSpec.of(("Inc",)),
             ThreadSpec.of(("Inc",))]
    interp = Interp(TINY)
    r = Explorer(interp, specs, mode="full", deadline=0.0,
                 events=events).run()
    assert r.deadline_hit
    assert events.snapshot("mc.deadline")


# -- always-on statement heat counters ---------------------------------------------

def test_stmt_heat_counts_visits_and_switches():
    specs = [ThreadSpec.of(("Inc",)), ThreadSpec.of(("Inc",))]
    r = _explore(TINY, specs, "full")
    heat = r.metrics["mc.stmt_heat"]
    assert heat, "the explorer always collects statement heat"
    # rows are [uid, visits, switches, distinct threads], sorted by uid
    assert heat == sorted(heat)
    assert all(len(row) == 4 for row in heat)
    visits = sum(row[1] for row in heat)
    switches = sum(row[2] for row in heat)
    # every uid-carrying transition is one visit; a symmetric 2-thread
    # search must context-switch somewhere and both threads run the
    # same code
    assert 0 < visits <= r.transitions
    assert 0 < switches < visits
    assert max(row[3] for row in heat) == 2


def test_stmt_heat_single_thread_has_no_switches():
    r = _explore(TINY, [ThreadSpec.of(("Set", 5))], "full")
    heat = r.metrics["mc.stmt_heat"]
    assert heat
    assert all(row[2] == 0 for row in heat)     # nothing to switch from
    assert all(row[3] == 1 for row in heat)


def test_stmt_heat_is_deterministic():
    # raw CFG uids shift between program builds (process-global
    # counter), but relative order and every count column must agree
    specs = [ThreadSpec.of(("Inc",)), ThreadSpec.of(("Inc",))]
    a = _explore(TINY, specs, "full").metrics["mc.stmt_heat"]
    b = _explore(TINY, specs, "full").metrics["mc.stmt_heat"]
    assert [row[1:] for row in a] == [row[1:] for row in b]


def test_heatmap_document_annotates_statements():
    from repro.analysis import analyze_program
    from repro.obs.export import HEATMAP_SCHEMA, validate
    from repro.obs.heatmap import build_heatmap, uid_annotations

    interp = Interp(corpus.GH_PROGRAM1)
    analysis = analyze_program(corpus.GH_PROGRAM1)
    specs = [ThreadSpec.of(("Apply", 1)), ThreadSpec.of(("Apply", 2))]
    r = Explorer(interp, specs, mode="full").run()
    annotations = uid_annotations(interp, analysis)
    doc = build_heatmap(r.metrics["mc.stmt_heat"], annotations,
                        annotated=True)
    assert validate(doc, HEATMAP_SCHEMA) == []
    assert doc["annotated"] is True
    assert doc["total_visits"] == sum(x[1] for x
                                      in r.metrics["mc.stmt_heat"])
    movers = {row["mover"] for row in doc["rows"]}
    assert movers & {"R", "L", "B", "N"}
    assert any(row["text"] for row in doc["rows"])


def test_heatmap_without_analysis_is_unannotated():
    from repro.obs.heatmap import build_heatmap, uid_annotations

    interp = Interp(TINY)
    specs = [ThreadSpec.of(("Inc",)), ThreadSpec.of(("Inc",))]
    r = Explorer(interp, specs, mode="full").run()
    annotations = uid_annotations(interp, None)
    doc = build_heatmap(r.metrics["mc.stmt_heat"], annotations,
                        annotated=False)
    assert doc["annotated"] is False
    assert doc["rows"]
