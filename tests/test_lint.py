"""The discipline linter: rule units, spans, suppression, severity
ordering, JSON schemas, and observability hooks (docs/LINT.md)."""

from repro import corpus
from repro.analysis.lint import (LINT_VERSION, RULES, Severity,
                                 lint_program)
from repro.obs.events import EVENT_SCHEMA, EventStream
from repro.obs.export import (LINT_REPORT_SCHEMA, LINT_SCHEMA,
                              validate)
from repro.obs.metrics import MetricsRegistry


def rules_of(result):
    return {d.rule for d in result.findings}


# -- registry sanity -----------------------------------------------------------

EXPECTED_RULES = {
    "llsc.multi-ll": Severity.ERROR,
    "llsc.no-ll": Severity.WARNING,
    "llsc.ll-gap": Severity.WARNING,
    "llsc.nested-ll": Severity.ERROR,
    "llsc.plain-read": Severity.WARNING,
    "llsc.plain-write": Severity.ERROR,
    "aba.unversioned-cas": Severity.ERROR,
    "aba.cas-no-read": Severity.INFO,
    "aba.multi-read": Severity.WARNING,
    "aba.plain-write-versioned": Severity.ERROR,
    "unique.escape": Severity.WARNING,
    "unique.broken-swap": Severity.WARNING,
    "race.unlocked": Severity.ERROR,
}


def test_registry_declares_every_documented_rule():
    assert {r: RULES[r].severity for r in RULES} == EXPECTED_RULES
    for rule in RULES.values():
        assert rule.summary
        assert rule.theorem


# -- llsc.* --------------------------------------------------------------------

def test_multi_ll_and_nested_ll_on_double_ll_down():
    result = lint_program(corpus.DOUBLE_LL_DOWN)
    assert rules_of(result) == {"llsc.multi-ll", "llsc.nested-ll"}
    assert result.errors == 2


def test_sc_without_ll_warns_no_ll():
    result = lint_program("""
        global G;
        proc P(v) { SC(G, v); }
    """)
    assert rules_of(result) == {"llsc.no-ll"}
    assert result.errors == 0 and result.warnings == 1


def test_ll_gap_when_a_path_skips_the_ll():
    result = lint_program("""
        global G;
        proc P(v) {
          if (v == 0) {
            local t = LL(G) in { skip; }
          }
          SC(G, v);
        }
    """)
    assert "llsc.ll-gap" in rules_of(result)


def test_retry_loop_is_clean():
    result = lint_program(corpus.SEMAPHORE)
    assert result.findings == []


def test_plain_write_to_llsc_region_is_error():
    result = lint_program("""
        global G;
        proc P(v) {
          loop {
            local t = LL(G) in {
              if (SC(G, t + 1)) { return; }
            }
          }
        }
        proc Reset() { G = 0; }
    """)
    assert "llsc.plain-write" in rules_of(result)
    (diag,) = [d for d in result.findings
               if d.rule == "llsc.plain-write"]
    assert diag.proc == "Reset"
    assert diag.severity is Severity.ERROR


def test_plain_read_in_reserving_proc_warns():
    result = lint_program(corpus.BROKEN_SEMAPHORE)
    assert rules_of(result) == {"llsc.plain-read"}
    (diag,) = result.findings
    assert diag.proc == "DownBad"
    # the stale read is `local tmp = Sem in {` on source line 7
    assert "Sem" in diag.message
    assert diag.span.line > 0 and diag.span.col > 0


def test_read_only_consumer_proc_is_exempt():
    result = lint_program("""
        global G;
        proc P(v) {
          loop {
            local t = LL(G) in {
              if (SC(G, t + 1)) { return; }
            }
          }
        }
        proc Peek() { local t = G in { return t; } }
    """)
    assert "llsc.plain-read" not in rules_of(result)


# -- aba.* ---------------------------------------------------------------------

def test_unversioned_cas_with_matching_read_is_error():
    result = lint_program("""
        global C;
        proc Inc() {
          loop {
            local c = C in {
              if (CAS(C, c, c + 1)) { return; }
            }
          }
        }
    """)
    assert "aba.unversioned-cas" in rules_of(result)
    (diag,) = [d for d in result.findings
               if d.rule == "aba.unversioned-cas"]
    assert "versioned C" in (diag.fix or "")


def test_versioned_cas_is_clean():
    result = lint_program(corpus.CAS_COUNTER)
    assert result.errors == 0


def test_cas_without_matching_read_is_info_only():
    result = lint_program("""
        global versioned C;
        proc Claim() { if (CAS(C, 0, 1)) { return 1; } return 0; }
    """)
    assert rules_of(result) == {"aba.cas-no-read"}
    assert result.errors == 0 and result.warnings == 0
    assert result.infos == 1


def test_cas_with_two_matching_reads_warns():
    result = lint_program("""
        global versioned C;
        proc P(v) {
          local c = 0 in {
            if (v == 0) { c = C; } else { c = C; }
            if (CAS(C, c, c + 1)) { return; }
          }
        }
    """)
    assert "aba.multi-read" in rules_of(result)


def test_plain_write_to_versioned_region_is_error():
    result = lint_program("""
        global versioned C;
        proc Inc() {
          loop {
            local c = C in {
              if (CAS(C, c, c + 1)) { return; }
            }
          }
        }
        proc Reset() { C = 0; }
    """)
    assert "aba.plain-write-versioned" in rules_of(result)


# -- race.* --------------------------------------------------------------------

def test_unlocked_shared_write_races():
    result = lint_program("""
        global V;
        proc Store(x) { V = x; }
        proc Load() { local t = V in { return t; } }
    """)
    assert rules_of(result) == {"race.unlocked"}
    (diag,) = result.findings
    assert diag.proc == "Store"
    assert "Store" in diag.message and "Load" in diag.message


def test_common_lock_silences_race():
    result = lint_program(corpus.LOCKED_REGISTER)
    assert result.findings == []


def test_read_only_region_does_not_race():
    result = lint_program("""
        global V;
        proc Load() { local t = V in { return t; } }
        proc Load2() { local t = V in { return t; } }
    """)
    assert result.findings == []


# -- spans and ordering --------------------------------------------------------

def test_spans_point_into_the_source():
    src = corpus.DOUBLE_LL_DOWN
    result = lint_program(src)
    lines = src.splitlines()
    for diag in result.findings:
        assert 1 <= diag.span.line <= len(lines)
        text = lines[diag.span.line - 1]
        assert "LL(Sem)" in text or "SC(Sem" in text


def test_findings_sorted_errors_first_then_position():
    result = lint_program(corpus.ABA_STACK)
    sevs = [int(d.severity) for d in result.findings]
    assert sevs == sorted(sevs, reverse=True)


# -- suppression ---------------------------------------------------------------

SUPPRESSIBLE = """
global G;
proc P(v) { SC(G, v); }
"""


def test_suppress_exact_rule_on_previous_line():
    src = SUPPRESSIBLE.replace(
        "proc P(v) { SC(G, v); }",
        "// lint: ignore[llsc.no-ll]\nproc P(v) { SC(G, v); }")
    result = lint_program(src)
    assert result.findings == []
    assert [d.rule for d in result.suppressed] == ["llsc.no-ll"]


def test_suppress_family_prefix_and_star():
    for entry in ("llsc", "*"):
        src = SUPPRESSIBLE.replace(
            "proc P(v) { SC(G, v); }",
            f"proc P(v) {{ SC(G, v); }} // lint: ignore[{entry}]")
        result = lint_program(src)
        assert result.findings == []
        assert len(result.suppressed) == 1


def test_unrelated_suppression_keeps_finding():
    src = SUPPRESSIBLE.replace(
        "proc P(v) { SC(G, v); }",
        "// lint: ignore[race.unlocked]\nproc P(v) { SC(G, v); }")
    result = lint_program(src)
    assert [d.rule for d in result.findings] == ["llsc.no-ll"]
    assert result.suppressed == []


def test_suppression_demo_example_file():
    with open("examples/synl/suppressed_semaphore.synl") as fh:
        src = fh.read()
    result = lint_program(src, label="suppressed_semaphore")
    assert result.findings == []
    assert [d.rule for d in result.suppressed] == ["llsc.plain-read"]


# -- rules filter --------------------------------------------------------------

def test_rules_filter_restricts_output():
    result = lint_program(corpus.ABA_STACK, rules=["race.unlocked"])
    assert rules_of(result) == {"race.unlocked"}
    result = lint_program(corpus.ABA_STACK, rules=["aba"])
    assert rules_of(result) <= {"aba.unversioned-cas",
                                "aba.cas-no-read", "aba.multi-read",
                                "aba.plain-write-versioned"}


# -- output formats ------------------------------------------------------------

def test_render_mentions_rule_and_fix():
    result = lint_program(corpus.ABA_STACK, label="aba")
    text = result.render()
    assert "error[aba.unversioned-cas]" in text
    assert "fix: declare the global as `global versioned Top;`" in text
    assert text.endswith("aba: 5 error(s), 0 warning(s), 1 info(s)")


def test_to_dict_validates_against_lint_schema():
    result = lint_program(corpus.ABA_STACK, label="aba")
    doc = result.to_dict()
    assert validate(doc, LINT_SCHEMA) == []
    assert doc["v"] == LINT_VERSION
    assert doc["summary"] == {"errors": 5, "warnings": 0, "infos": 1,
                              "suppressed": 0}
    report = {"v": 1, "targets": [doc]}
    assert validate(report, LINT_REPORT_SCHEMA) == []


def test_report_schema_rejects_bad_severity():
    result = lint_program(corpus.ABA_STACK, label="aba")
    doc = result.to_dict()
    doc["findings"][0]["severity"] = "fatal"
    assert validate(doc, LINT_SCHEMA) != []


# -- CLI surface ---------------------------------------------------------------

def test_cli_lint_json_and_exit_codes(tmp_path, capsys):
    import json

    from repro import cli

    clean = tmp_path / "clean.synl"
    clean.write_text(corpus.SEMAPHORE)
    bad = tmp_path / "bad.synl"
    bad.write_text(corpus.DOUBLE_LL_DOWN)

    assert cli.main(["lint", str(clean)]) == 0
    capsys.readouterr()
    assert cli.main(["lint", "--json", str(bad)]) == 2
    doc = json.loads(capsys.readouterr().out)
    assert validate(doc, LINT_REPORT_SCHEMA) == []
    (target,) = doc["targets"]
    assert target["summary"]["errors"] == 2


def test_cli_lint_manifest_gate(capsys):
    from repro import cli

    assert cli.main(["lint", "--corpus",
                     "examples/synl/aba_stack.synl",
                     "examples/synl/double_ll_down.synl",
                     "examples/synl/suppressed_semaphore.synl",
                     "--manifest", "tests/lint_manifest.json"]) == 0
    out = capsys.readouterr().out
    assert "manifest ok: 22 target(s)" in out


def test_cli_lint_manifest_reports_deviation(tmp_path, capsys):
    import json

    from repro import cli

    manifest = {"v": 1, "expected": {"DOUBLE_LL_DOWN": {},
                                     "GHOST": {"race.unlocked": 1}}}
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(manifest))
    bad = tmp_path / "bad.synl"
    bad.write_text(corpus.DOUBLE_LL_DOWN)
    code = cli.main(["lint", str(bad), "--manifest", str(path)])
    assert code == 1
    out = capsys.readouterr().out
    # unexpected findings, lost expected findings, and unlinted
    # manifest entries all surface
    assert f"MISMATCH {bad}" in out
    assert "GHOST: listed in manifest but not linted" in out


# -- observability hooks -------------------------------------------------------

def test_metrics_counters():
    registry = MetricsRegistry()
    lint_program(corpus.ABA_STACK, metrics=registry)
    snap = registry.snapshot()
    assert snap["lint.runs"] == 1
    assert snap["lint.findings.error"] == 5
    assert snap["lint.findings.info"] == 1
    assert snap["lint.rule.aba.unversioned-cas"] == 3


def test_event_stream_receives_findings():
    events = EventStream()
    lint_program(corpus.DOUBLE_LL_DOWN, label="dll", events=events)
    findings = events.snapshot("lint.finding")
    assert {e["rule"] for e in findings} == {"llsc.multi-ll",
                                             "llsc.nested-ll"}
    (run,) = events.snapshot("lint.run")
    assert run["target"] == "dll" and run["errors"] == 2
    for event in events.snapshot():
        assert validate(event, EVENT_SCHEMA) == []
