"""Experiment drivers reproduce the paper's tables/figures (scaled-down
parameters where exploration cost matters; the benchmarks run the full
configurations)."""

import pytest

from repro.experiments import (ablations, crossval, figure3, figure4,
                               figure567, section63, section64, table2)


def test_figure3_matches_paper():
    result = figure3.run()
    assert result.matches_paper
    assert set(figure3.PAPER_LABELS) <= set(result.labels)


def test_figure3_render_contains_fig3_lines():
    result = figure3.run()
    assert "TRUE(SC(t.Next, node));" in result.rendered
    assert "TRUE(h != LL(Tail));" in result.rendered


def test_figure4_matches_paper():
    result = figure4.run()
    assert result.matches_paper
    assert result.labels == figure4.PAPER_LABELS


def test_figure567_verdicts_and_findings():
    result = figure567.run(max_states=200_000)
    assert result.matches_paper
    assert result.program2_equivalent
    assert not result.full_equivalent   # the Fig. 7 version-reset finding
    assert result.fixed_equivalent


def test_table2_shape_small_config():
    result = table2.run(n_threads=1, max_states=100_000)
    add, deq, bad = result.rows
    assert add.full.violation is None and add.atomic.violation is None
    assert add.reduction >= 50
    assert deq.reduction >= 50
    assert bad.full.violation is not None
    assert bad.atomic.violation is not None
    assert bad.atomic.states <= 100


def test_table2_render_mentions_paper_numbers():
    text = table2.main(n_threads=1, max_states=100_000)
    assert "4500" in text and "reduction" in text


def test_section63_ordering_small_config():
    result = section63.run(n_threads=2, max_states=300_000)
    states = {m: r.states for m, r in result.results.items()}
    assert states["none"] > states["por"] > states["atomic"] \
        >= states["both"]


def test_section64_matches_paper():
    result = section64.run()
    assert result.lines == section64.PAPER_LINES
    assert result.blocks == section64.PAPER_BLOCKS
    assert result.all_blocks_atomic
    assert result.matches_paper


def test_ablations_full_analysis_verifies_everything():
    result = ablations.run()
    ok, total = result.score("full analysis")
    assert ok == total
    # every ablation except the LL-agreement split loses something
    for name in ablations.ABLATIONS:
        if name in ("full analysis", "no LL-agreement case split"):
            continue
        ok, total = result.score(name)
        assert ok < total, name


def test_crossval_table_is_consistent():
    text = crossval.main()
    assert "all cases consistent: True" in text
    assert "DOUBLE_LL_DOWN" in text and "full == atomic" in text
