"""Exceptional slices and variant generation (§5.2)."""

import pytest

from repro import corpus
from repro.analysis.escape import escape_analysis
from repro.analysis.purity import pure_loops
from repro.analysis.slices import negate, split_bare_sc
from repro.analysis.uniqueness import uniqueness_analysis
from repro.analysis.variants import make_variants
from repro.synl import ast as A
from repro.synl.parser import parse_expr, parse_stmt
from repro.synl.printer import pretty, pretty_expr
from repro.cfg import build_cfg
from repro.synl.resolve import load_program


def variants_of(source):
    prog = load_program(source)
    cfgs = {p.name: build_cfg(p) for p in prog.procs}
    unique = uniqueness_analysis(prog, cfgs)
    purity = {p.name: pure_loops(cfgs[p.name], prog,
                                 escape_analysis(cfgs[p.name]),
                                 unique.unique_bindings())
              for p in prog.procs}
    return make_variants(prog, cfgs, purity)


# -- negate -------------------------------------------------------------------------

@pytest.mark.parametrize("before,after", [
    ("a == b", "a != b"),
    ("a != b", "a == b"),
    ("a < b", "a >= b"),
    ("a >= b", "a < b"),
    ("!VL(X)", "VL(X)"),
    ("true", "false"),
    ("VL(X)", "!VL(X)"),
])
def test_negate_simplifies(before, after):
    assert pretty_expr(negate(parse_expr(before))) == after


# -- bare SC success split ------------------------------------------------------------

def test_split_bare_sc_produces_both_outcomes():
    stmt = parse_stmt("{ SC(X, v); return; }")
    alternatives = split_bare_sc(stmt.stmts)
    assert len(alternatives) == 2
    texts = {pretty_expr(alt[0].cond) for alt in alternatives}
    assert texts == {"SC(X, v)", "!SC(X, v)"}


def test_split_bare_sc_leaves_other_statements_alone():
    stmt = parse_stmt("{ x = 1; return; }")
    alternatives = split_bare_sc(stmt.stmts)
    assert len(alternatives) == 1


def test_split_two_bare_scs_gives_four_alternatives():
    stmt = parse_stmt("{ SC(X, a); SC(Y, b); }")
    assert len(split_bare_sc(stmt.stmts)) == 4


# -- variant structure ------------------------------------------------------------------

def test_nfq_prime_variant_counts():
    vs = variants_of(corpus.NFQ_PRIME)
    assert len(vs.of("AddNode")) == 1
    assert len(vs.of("UpdateTail")) == 2  # SC success split
    assert len(vs.of("DeqP")) == 2        # two return exits


def test_addnode_variant_is_straight_line_with_assumes():
    vs = variants_of(corpus.NFQ_PRIME)
    (variant,) = vs.of("AddNode")
    text = pretty(variant.proc)
    assert "loop" not in text
    assert "TRUE(VL(Tail))" in text
    assert "TRUE(next == null)" in text
    assert "TRUE(SC(t.Next, node))" in text


def test_deqp_variants_select_opposite_branches():
    vs = variants_of(corpus.NFQ_PRIME)
    texts = [pretty(v.proc) for v in vs.of("DeqP")]
    assert any("TRUE(next == null)" in t for t in texts)
    assert any("TRUE(next != null)" in t for t in texts)
    assert any("TRUE(h != LL(Tail))" in t for t in texts)


def test_variant_exits_recorded():
    vs = variants_of(corpus.NFQ_PRIME)
    exits = {e for v in vs.of("DeqP") for e in v.exits.values()}
    assert exits == {"return EMPTY", "return value"}


def test_non_pure_loops_kept_verbatim():
    vs = variants_of(corpus.NFQ)
    (enq,) = vs.of("Enq")
    assert "loop" in pretty(enq.proc)


def test_gh_variant_keeps_residual_copy_loop():
    vs = variants_of(corpus.GH_PROGRAM1)
    (variant,) = vs.of("Apply")
    text = pretty(variant.proc)
    assert "loop" in text                   # the inner copy loop stays
    assert "TRUE(VL(SharedObj))" in text    # continue-a2 paths sliced out
    assert "continue" not in text
    assert "TRUE(SC(SharedObj, prvObj))" in text


def test_variant_program_is_resolved():
    vs = variants_of(corpus.NFQ_PRIME)
    for variant in vs.variants:
        for node in variant.proc.body.walk():
            if isinstance(node, A.Var):
                assert node.kind is not None, node.name


def test_code_after_pure_loop_survives_break_exits():
    vs = variants_of("""
        global G;
        proc P(v) {
          loop {
            local t = LL(G) in {
              if (t == v) { break; }
              if (SC(G, v)) { break; }
            }
          }
          G = 9;
        }
    """)
    texts = [pretty(v.proc) for v in vs.of("P")]
    assert all("G = 9" in t for t in texts)
    # the SC-guarded break yields a TRUE(SC(...)) variant
    assert any("TRUE(SC(G, v))" in t for t in texts)


def test_code_after_return_exit_is_dropped():
    vs = variants_of("""
        global G;
        proc P(v) {
          loop {
            local t = LL(G) in {
              if (SC(G, v)) { return; }
            }
          }
          G = 9;
        }
    """)
    (variant,) = vs.of("P")
    assert "G = 9" not in pretty(variant.proc)


def test_nested_pure_loops_expand_recursively_via_checker():
    """The allocator's anchor-pop loop sits inside the credit loop; the
    full checker expands both (fixpoint iteration)."""
    from repro.analysis import analyze_program

    result = analyze_program(corpus.ALLOCATOR)
    names = [v.variant.name
             for v in result.verdicts["MallocFromActive"].variants]
    assert len(names) == 2
    for report in result.verdicts["MallocFromActive"].variants:
        assert "loop" not in pretty(report.variant.proc)
