"""CFG construction tests: shapes, loop structure, jump handling."""

import pytest

from repro.cfg import NodeKind, build_cfg, normal_iteration_nodes
from repro.synl.resolve import load_program


def cfg_of(body: str, params: str = ""):
    prog = load_program(f"global G; proc P({params}) {{ {body} }}")
    return build_cfg(prog.proc("P"))


def nodes_of_kind(cfg, kind):
    return [n for n in cfg.nodes if n.kind is kind]


def test_straight_line_chain():
    cfg = cfg_of("G = 1; G = 2;")
    stmts = nodes_of_kind(cfg, NodeKind.STMT)
    assert len(stmts) == 2
    assert list(cfg.successors(cfg.entry)) == [stmts[0]]
    assert list(cfg.successors(stmts[0])) == [stmts[1]]
    assert list(cfg.successors(stmts[1])) == [cfg.exit]


def test_if_has_labeled_edges_and_join():
    cfg = cfg_of("if (G == 1) { G = 2; } else { G = 3; } G = 4;")
    (branch,) = nodes_of_kind(cfg, NodeKind.BRANCH)
    labels = sorted(str(e.label) for e in cfg.out_edges(branch))
    assert labels == ["False", "True"]
    join = [n for n in nodes_of_kind(cfg, NodeKind.STMT)
            if len(cfg.in_edges(n)) == 2]
    assert len(join) == 1


def test_if_without_else_falls_through():
    cfg = cfg_of("if (G == 1) { G = 2; } G = 3;")
    (branch,) = nodes_of_kind(cfg, NodeKind.BRANCH)
    false_edges = [e for e in cfg.out_edges(branch) if e.label is False]
    assert len(false_edges) == 1


def test_loop_back_edge_and_break_exit():
    cfg = cfg_of("loop { if (G == 1) { break; } G = 2; } G = 3;")
    (head,) = nodes_of_kind(cfg, NodeKind.LOOP_HEAD)
    (brk,) = nodes_of_kind(cfg, NodeKind.BREAK)
    info = cfg.loops[0]
    assert info.head is head
    assert brk in info.exceptional_exits
    back = [e for e in cfg.in_edges(head) if e.src is not cfg.entry]
    assert back, "loop body must flow back to the head"


def test_continue_adds_back_edge_and_counts_normal():
    cfg = cfg_of("loop { if (G == 1) { continue; } break; }")
    (cont,) = nodes_of_kind(cfg, NodeKind.CONTINUE)
    info = cfg.loops[0]
    assert cont in info.back_sources
    assert cont not in info.exceptional_exits


def test_return_is_exceptional_exit_of_all_enclosing_loops():
    cfg = cfg_of("loop { loop { if (G == 1) { return; } break; } break; }")
    (ret,) = nodes_of_kind(cfg, NodeKind.RETURN)
    assert all(ret in info.exceptional_exits for info in cfg.loops)


def test_labeled_break_registers_for_both_loops():
    cfg = cfg_of("out: loop { loop { if (G == 1) { break out; } } }")
    (brk,) = nodes_of_kind(cfg, NodeKind.BREAK)
    assert all(brk in info.exceptional_exits for info in cfg.loops)
    outer = next(i for i in cfg.loops if i.loop.label == "out")
    assert getattr(brk, "jump_target") is outer.loop


def test_labeled_continue_targets_outer_loop():
    cfg = cfg_of(
        "a2: loop { loop { if (G == 1) { continue a2; } break; } }")
    (cont,) = nodes_of_kind(cfg, NodeKind.CONTINUE)
    outer = next(i for i in cfg.loops if i.loop.label == "a2")
    inner = next(i for i in cfg.loops if i.loop.label is None)
    assert cont in outer.back_sources
    assert cont not in inner.back_sources


def test_synchronized_produces_acquire_release_pair():
    cfg = cfg_of("synchronized (G) { G = 1; }")
    assert len(nodes_of_kind(cfg, NodeKind.ACQUIRE)) == 1
    assert len(nodes_of_kind(cfg, NodeKind.RELEASE)) == 1


def test_return_inside_synchronized_gets_release_chain():
    cfg = cfg_of("synchronized (G) { if (G == 1) { return; } }")
    (ret,) = nodes_of_kind(cfg, NodeKind.RETURN)
    releases = nodes_of_kind(cfg, NodeKind.RELEASE)
    # one normal release + one before the return
    assert len(releases) == 2
    preds = list(cfg.predecessors(ret))
    assert any(p.kind is NodeKind.RELEASE for p in preds)


def test_normal_iteration_nodes_exclude_exceptional_only_paths():
    cfg = cfg_of("""
      loop {
        if (G == 1) { return; }
        G = 2;
      }
    """)
    info = cfg.loops[0]
    normal = normal_iteration_nodes(cfg, info)
    (ret,) = nodes_of_kind(cfg, NodeKind.RETURN)
    assign = next(n for n in nodes_of_kind(cfg, NodeKind.STMT))
    assert ret not in normal
    assert assign in normal
    (branch,) = nodes_of_kind(cfg, NodeKind.BRANCH)
    assert branch in normal  # the test itself runs in normal iterations


def test_normal_iteration_nodes_empty_for_always_exiting_loop():
    cfg = cfg_of("loop { return; }")
    info = cfg.loops[0]
    assert normal_iteration_nodes(cfg, info) == set()


def test_bind_node_for_local_declaration():
    cfg = cfg_of("local x = G in { G = x; }")
    binds = nodes_of_kind(cfg, NodeKind.BIND)
    assert len(binds) == 1


def test_unconditional_loop_has_no_fallthrough_exit():
    cfg = cfg_of("loop { G = 1; }")
    # nothing reaches exit except via the implicit end (unreachable)
    assert cfg.exit not in cfg.reachable_from(cfg.entry)


def test_reachable_from_respects_within():
    cfg = cfg_of("loop { if (G == 1) { break; } } G = 9;")
    info = cfg.loops[0]
    body = set(info.body_nodes)
    reach = cfg.reachable_from(info.head, within=body | {info.head})
    after = [n for n in nodes_of_kind(cfg, NodeKind.STMT)]
    assert all(n not in reach for n in after)


def test_backward_reachable_stops_at_barrier():
    cfg = cfg_of("G = 1; G = 2; G = 3;")
    s1, s2, s3 = nodes_of_kind(cfg, NodeKind.STMT)
    back = cfg.backward_reachable([s3], stop={s2})
    assert s2 in back and s1 not in back
