"""Procedure-call inlining tests (the paper's 'internal procedures are
inlined' convention, automated)."""

import pytest

from repro.analysis import analyze_program
from repro.errors import ResolveError
from repro.interp import Interp, ThreadSpec, run_round_robin
from repro.synl.inline import inline_calls, load_program_with_calls
from repro.synl.parser import parse_program
from repro.synl import ast as A


def _returns(world, proc=None):
    return [e.result for e in world.history
            if e.kind == "return" and (proc is None or e.proc == proc)]


def test_void_call_inlined_and_executes():
    prog = load_program_with_calls("""
        global G;
        init { G = 0; }
        proc Bump() { G = G + 1; }
        proc Twice() { Bump(); Bump(); }
    """)
    interp = Interp(prog)
    world = interp.make_world([ThreadSpec.of(("Twice",))])
    run_round_robin(interp, world)
    assert world.globals["G"] == 2


def test_value_call_binds_result():
    prog = load_program_with_calls("""
        global G;
        init { G = 40; }
        proc ReadPlus(k) { return G + k; }
        proc Use() {
          local x = ReadPlus(2) in { return x; }
        }
    """)
    interp = Interp(prog)
    world = interp.make_world([ThreadSpec.of(("Use",))])
    run_round_robin(interp, world)
    assert _returns(world, "Use") == [42]


def test_early_return_from_branch():
    prog = load_program_with_calls("""
        proc Sign(v) {
          if (v > 0) { return 1; }
          if (v < 0) { return -1; }
          return 0;
        }
        proc Use(v) {
          local s = Sign(v) in { return s; }
        }
    """)
    interp = Interp(prog)
    world = interp.make_world([ThreadSpec.of(
        ("Use", 9), ("Use", -3), ("Use", 0))])
    run_round_robin(interp, world)
    assert _returns(world, "Use") == [1, -1, 0]


def test_call_with_loop_in_callee():
    prog = load_program_with_calls("""
        global G;
        init { G = 0; }
        proc Inc() {
          loop {
            local t = LL(G) in {
              if (SC(G, t + 1)) { return t + 1; }
            }
          }
        }
        proc Twice() {
          local a = Inc() in
          local b = Inc() in {
            return a + b;
          }
        }
    """)
    interp = Interp(prog)
    world = interp.make_world([ThreadSpec.of(("Twice",))])
    run_round_robin(interp, world)
    assert _returns(world, "Twice") == [3]  # 1 + 2


def test_nested_calls_inline_transitively():
    prog = load_program_with_calls("""
        proc A() { return 1; }
        proc B() { local a = A() in { return a + 1; } }
        proc C() { local b = B() in { return b + 1; } }
    """)
    interp = Interp(prog)
    world = interp.make_world([ThreadSpec.of(("C",))])
    run_round_robin(interp, world)
    assert _returns(world, "C") == [3]
    # the inlined program contains no residual calls
    for node in prog.proc("C").walk():
        assert not (isinstance(node, A.PrimCall)
                    and node.name in ("A", "B"))


def test_recursion_rejected():
    with pytest.raises(ResolveError, match="recursive"):
        load_program_with_calls("proc P() { P(); }")


def test_mutual_recursion_rejected():
    with pytest.raises(ResolveError, match="recursive"):
        load_program_with_calls("""
            proc P() { Q(); }
            proc Q() { P(); }
        """)


def test_call_in_expression_position_rejected():
    with pytest.raises(ResolveError, match="statement or as a local"):
        load_program_with_calls("""
            global G;
            proc P() { return 1; }
            proc Q() { G = P() + 1; }
        """)


def test_arity_mismatch_rejected():
    with pytest.raises(ResolveError, match="arguments"):
        load_program_with_calls("""
            proc P(a, b) { return a; }
            proc Q() { P(1); }
        """)


def test_primitive_names_left_alone():
    prog = load_program_with_calls("""
        proc P(v) { return compute(v, 1); }
    """)
    calls = [n for n in prog.walk() if isinstance(n, A.PrimCall)]
    assert len(calls) == 1 and calls[0].name == "compute"


def test_inlined_program_is_analyzable():
    """The paper's intended workflow: write helpers, inline, analyze."""
    prog = load_program_with_calls("""
        global Sem;
        init { Sem = 1; }
        proc Down() {
          loop {
            local tmp = LL(Sem) in {
              if (tmp > 0) {
                if (SC(Sem, tmp - 1)) { return; }
              }
            }
          }
        }
        proc CriticalPair() {
          Down();
        }
    """)
    result = analyze_program(prog)
    assert result.is_atomic("Down")
    assert result.is_atomic("CriticalPair")  # just an inlined Down


def test_inlining_preserves_original_program():
    original = parse_program("""
        proc A() { return 1; }
        proc B() { A(); }
    """)
    before = original.key()
    inline_calls(original)
    assert original.key() == before
