"""Escape analysis (fresh objects) and uniqueness (working copies)."""

from repro.analysis.escape import escape_analysis
from repro.analysis.uniqueness import uniqueness_analysis
from repro.cfg import NodeKind, build_cfg
from repro.synl import ast as A
from repro.synl.resolve import load_program


def _setup(source):
    prog = load_program(source)
    cfgs = {p.name: build_cfg(p) for p in prog.procs}
    return prog, cfgs


def _node_for(cfg, text_kind, pred):
    for node in cfg.nodes:
        if node.kind is text_kind and pred(node):
            return node
    raise AssertionError("node not found")


# -- escape analysis ---------------------------------------------------------------

def test_fresh_until_stored_to_global():
    prog, cfgs = _setup("""
        class Node { V; }
        global G;
        proc P() {
          local n = new Node in {
            n.V = 1;
            G = n;
            skip;
          }
        }
    """)
    cfg = cfgs["P"]
    esc = escape_analysis(cfg)
    decl = next(x for x in prog.walk() if isinstance(x, A.LocalDecl))
    write = _node_for(cfg, NodeKind.STMT,
                      lambda n: isinstance(n.stmt, A.Assign)
                      and isinstance(n.stmt.target, A.Field))
    store = _node_for(cfg, NodeKind.STMT,
                      lambda n: isinstance(n.stmt, A.Assign)
                      and isinstance(n.stmt.target, A.Var)
                      and n.stmt.target.name == "G")
    after = _node_for(cfg, NodeKind.STMT,
                      lambda n: isinstance(n.stmt, A.Skip))
    assert esc.is_fresh(write, decl.binding)
    assert esc.is_fresh(store, decl.binding)  # consumed *by* this node
    assert not esc.is_fresh(after, decl.binding)


def test_freshness_killed_on_comparison_use():
    prog, cfgs = _setup("""
        class Node { V; }
        global G;
        proc P() {
          local n = new Node in {
            if (n == null) { skip; }
            n.V = 1;
          }
        }
    """)
    cfg = cfgs["P"]
    esc = escape_analysis(cfg)
    decl = next(x for x in prog.walk() if isinstance(x, A.LocalDecl))
    write = _node_for(cfg, NodeKind.STMT,
                      lambda n: isinstance(n.stmt, A.Assign))
    assert not esc.is_fresh(write, decl.binding)


def test_freshness_survives_failed_sc_branch():
    """The Treiber-push idiom: a failed SC publishes nothing, so n stays
    fresh around the retry loop (edge-sensitive escape)."""
    prog, cfgs = _setup("""
        class SNode { Value; SNext; }
        global Top;
        proc Push(v) {
          local n = new SNode in {
            n.Value = v;
            loop {
              local t = LL(Top) in {
                n.SNext = t;
                if (SC(Top, n)) { return; }
              }
            }
          }
        }
    """)
    cfg = cfgs["Push"]
    esc = escape_analysis(cfg)
    decl = next(x for x in prog.walk() if isinstance(x, A.LocalDecl)
                and x.name == "n")
    write = _node_for(cfg, NodeKind.STMT,
                      lambda nd: isinstance(nd.stmt, A.Assign)
                      and isinstance(nd.stmt.target, A.Field)
                      and nd.stmt.target.name == "SNext")
    assert esc.is_fresh(write, decl.binding)


def test_freshness_killed_on_success_edge():
    prog, cfgs = _setup("""
        class SNode { Value; }
        global Top;
        proc P() {
          local n = new SNode in {
            if (SC(Top, n)) {
              n.Value = 1;
            }
          }
        }
    """)
    cfg = cfgs["P"]
    esc = escape_analysis(cfg)
    decl = next(x for x in prog.walk() if isinstance(x, A.LocalDecl))
    write = _node_for(cfg, NodeKind.STMT,
                      lambda nd: isinstance(nd.stmt, A.Assign))
    # after a successful publish the object is shared
    assert not esc.is_fresh(write, decl.binding)


def test_reassignment_from_non_allocation_kills_freshness():
    prog, cfgs = _setup("""
        class Node { V; }
        global G;
        proc P() {
          local n = new Node in {
            n = G;
            n.V = 1;
          }
        }
    """)
    cfg = cfgs["P"]
    esc = escape_analysis(cfg)
    decl = next(x for x in prog.walk() if isinstance(x, A.LocalDecl))
    write = _node_for(cfg, NodeKind.STMT,
                      lambda nd: isinstance(nd.stmt, A.Assign)
                      and isinstance(nd.stmt.target, A.Field))
    assert not esc.is_fresh(write, decl.binding)


# -- uniqueness (working-copy discipline) ----------------------------------------------

HERLIHY_STYLE = """
    class Obj { data; }
    global Q;
    threadlocal prv;
    init { Q = new Obj; }
    threadinit { prv = new Obj; }
    proc Apply(x) {
      loop {
        local m = LL(Q) in {
          prv.data = m.data;
          if (SC(Q, prv)) {
            prv = m;
            return;
          }
        }
      }
    }
"""


def test_working_copy_certified():
    prog, cfgs = _setup(HERLIHY_STYLE)
    result = uniqueness_analysis(prog, cfgs)
    assert "prv" in result.unique
    assert result.swap_root["prv"] == "Q"


def test_swap_without_sc_guard_rejected():
    prog, cfgs = _setup(HERLIHY_STYLE.replace(
        "if (SC(Q, prv)) {\n            prv = m;",
        "if (VL(Q)) {\n            prv = m;"))
    result = uniqueness_analysis(prog, cfgs)
    assert "prv" not in result.unique
    assert "prv" in result.rejected


def test_leaking_prv_to_global_rejected():
    source = HERLIHY_STYLE.replace("proc Apply",
                                   "proc Leak() { Q = prv; } proc Apply")
    prog, cfgs = _setup(source)
    result = uniqueness_analysis(prog, cfgs)
    assert "prv" not in result.unique


def test_swap_source_live_after_swap_rejected():
    source = HERLIHY_STYLE.replace(
        "prv = m;\n            return;",
        "prv = m;\n            Q = m;\n            return;")
    prog, cfgs = _setup(source)
    result = uniqueness_analysis(prog, cfgs)
    assert "prv" not in result.unique


def test_unswapped_threadlocal_with_only_derefs_is_unique():
    prog, cfgs = _setup("""
        class Obj { data; }
        threadlocal scratch;
        threadinit { scratch = new Obj; }
        proc P(x) { scratch.data = x; }
    """)
    result = uniqueness_analysis(prog, cfgs)
    assert "scratch" in result.unique


def test_threadlocal_initialized_from_global_rejected():
    prog, cfgs = _setup("""
        class Obj { data; }
        global Q;
        threadlocal p;
        init { Q = new Obj; }
        threadinit { p = Q; }
        proc P(x) { p.data = x; }
    """)
    result = uniqueness_analysis(prog, cfgs)
    assert "p" not in result.unique
