"""Canonical state hashing: allocation-order invariance, reservation
and counter abstraction, repeat-script wrapping."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import Interp, ThreadSpec, run_random
from repro.mc import quiescent_key, state_key

SOURCE = """
class Node { Value; Next; }
global Head;
init {
  local d = new Node in { d.Next = null; Head = d; }
}
proc Add(v) {
  local n = new Node in {
    n.Value = v;
    local h = LL(Head) in {
      n.Next = h;
      if (SC(Head, n)) { return 1; }
      return 0;
    }
  }
}
proc Noop() { skip; }
"""


def _world(specs):
    interp = Interp(SOURCE)
    return interp, interp.make_world(specs)


def test_key_is_deterministic():
    _, w1 = _world([ThreadSpec.of(("Add", 1))])
    _, w2 = _world([ThreadSpec.of(("Add", 1))])
    assert state_key(w1) == state_key(w2)


def test_key_distinguishes_global_values():
    interp, w1 = _world([ThreadSpec.of(("Add", 1))])
    w2 = w1.copy()
    run_random(interp, w2, seed=0)
    assert state_key(w1) != state_key(w2)


def test_allocation_order_is_canonicalized():
    """Allocating garbage first must not change the key: object ids are
    renamed by reachability order and garbage is dropped."""
    interp = Interp(SOURCE)
    w1 = interp.make_world([ThreadSpec.of(("Add", 1))])
    w2 = interp.make_world([ThreadSpec.of(("Add", 1))])
    # create unreachable garbage in w2's heap with different raw oids
    for _ in range(5):
        w2.heap.alloc("Node")
    assert state_key(w1) == state_key(w2)


def test_invalid_reservation_equals_no_reservation():
    interp = Interp(SOURCE)
    w1 = interp.make_world([ThreadSpec.of(("Add", 1))])
    w2 = w1.copy()
    w2.threads[0].reservations[("g", "Head")] = False
    assert state_key(w1) == state_key(w2)


def test_valid_reservation_changes_key():
    interp = Interp(SOURCE)
    w1 = interp.make_world([ThreadSpec.of(("Add", 1))])
    w2 = w1.copy()
    w2.threads[0].reservations[("g", "Head")] = True
    assert state_key(w1) != state_key(w2)


def test_stale_observation_equals_no_observation():
    interp = Interp(SOURCE)
    w1 = interp.make_world([ThreadSpec.of(("Add", 1))])
    w2 = w1.copy()
    w2.versions[("g", "Head")] = 7
    w1.versions[("g", "Head")] = 7
    w2.threads[0].observed[("g", "Head")] = 3  # != current 7: stale
    assert state_key(w1) == state_key(w2)


def test_absolute_version_numbers_do_not_leak_into_key():
    interp = Interp(SOURCE)
    w1 = interp.make_world([ThreadSpec.of(("Add", 1))])
    w2 = w1.copy()
    w1.versions[("g", "Head")] = 3
    w2.versions[("g", "Head")] = 3000
    w1.threads[0].observed[("g", "Head")] = 3     # current in w1
    w2.threads[0].observed[("g", "Head")] = 3000  # current in w2
    assert state_key(w1) == state_key(w2)


def test_repeat_script_op_index_wraps():
    interp = Interp(SOURCE)
    w1 = interp.make_world([ThreadSpec.of(("Noop",), repeat=True)])
    w2 = w1.copy()
    w2.threads[0].op_index = 4  # 4 % 1 == 0
    assert state_key(w1) == state_key(w2)


def test_quiescent_key_ignores_stale_reservations():
    interp = Interp(SOURCE)
    w1 = interp.make_world([ThreadSpec.of(("Add", 1))])
    w2 = w1.copy()
    w2.threads[0].reservations[("g", "Head")] = True
    assert quiescent_key(w1) == quiescent_key(w2)
    assert state_key(w1) != state_key(w2)


@given(st.integers(0, 7), st.integers(0, 7))
@settings(max_examples=20, deadline=None)
def test_same_schedule_same_key_property(seed_a, seed_b):
    """Keys agree iff the runs end in observably-equal states; for the
    single-threaded Add program, every schedule gives the same result."""
    interp = Interp(SOURCE)
    w1 = interp.make_world([ThreadSpec.of(("Add", 1), ("Add", 2))])
    w2 = interp.make_world([ThreadSpec.of(("Add", 1), ("Add", 2))])
    run_random(interp, w1, seed=seed_a)
    run_random(interp, w2, seed=seed_b)
    assert state_key(w1) == state_key(w2)
