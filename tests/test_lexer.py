"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.synl.lexer import tokenize
from repro.synl.tokens import TokenKind as T


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def test_empty_input_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1 and toks[0].kind is T.EOF


def test_integer_literal():
    toks = tokenize("42")
    assert toks[0].kind is T.INT and toks[0].text == "42"


def test_identifier_and_keyword_distinction():
    assert kinds("loop loops") == [T.LOOP, T.IDENT]


def test_true_statement_keyword_vs_boolean_literal():
    assert kinds("TRUE true") == [T.TRUE_KW, T.TRUE_LIT]


def test_ll_sc_vl_cas_keywords():
    assert kinds("LL SC VL CAS") == [T.LL, T.SC, T.VL, T.CAS]


def test_multichar_operators_lex_greedily():
    assert kinds("== != <= >= && || ++ --") == [
        T.EQ, T.NE, T.LE, T.GE, T.AND, T.OR, T.PLUSPLUS, T.MINUSMINUS]


def test_single_char_operators():
    assert kinds("= < > + - * / % !") == [
        T.ASSIGN, T.LT, T.GT, T.PLUS, T.MINUS, T.STAR, T.SLASH,
        T.PERCENT, T.NOT]


def test_punctuation():
    assert kinds("( ) { } [ ] ; , . :") == [
        T.LPAREN, T.RPAREN, T.LBRACE, T.RBRACE, T.LBRACKET, T.RBRACKET,
        T.SEMI, T.COMMA, T.DOT, T.COLON]


def test_line_comment_skipped():
    assert kinds("a // comment here\n b") == [T.IDENT, T.IDENT]


def test_block_comment_skipped():
    assert kinds("a /* x\n y */ b") == [T.IDENT, T.IDENT]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_unexpected_character_raises_with_position():
    with pytest.raises(LexError) as info:
        tokenize("x = #")
    assert "1:5" in str(info.value)


def test_positions_track_lines_and_columns():
    toks = tokenize("a\n  bb\n   c")
    assert (toks[0].pos.line, toks[0].pos.col) == (1, 1)
    assert (toks[1].pos.line, toks[1].pos.col) == (2, 3)
    assert (toks[2].pos.line, toks[2].pos.col) == (3, 4)


def test_adjacent_tokens_without_whitespace():
    assert kinds("x.fd[3]=y;") == [
        T.IDENT, T.DOT, T.IDENT, T.LBRACKET, T.INT, T.RBRACKET,
        T.ASSIGN, T.IDENT, T.SEMI]


def test_identifier_with_underscore_and_digits():
    toks = tokenize("next_2 _x")
    assert toks[0].text == "next_2" and toks[1].text == "_x"


def test_not_equal_vs_not_then_assign():
    assert kinds("!=!") == [T.NE, T.NOT]


def test_crlf_treated_as_whitespace():
    assert kinds("a\r\nb") == [T.IDENT, T.IDENT]
