"""The observability layer: span tracing, metric aggregation, JSON
schema round-trips, classification provenance, and the CLI surfacing
(--trace/--metrics/--json/--explain, REPRO_TRACE, exit codes)."""

from __future__ import annotations

import json
import threading

import pytest

from repro import cli, corpus
from repro.analysis import analyze_program
from repro.analysis.report import (line_provenance, render_figure,
                                   variant_lines)
from repro.interp import Interp, ThreadSpec
from repro.mc import Explorer
from repro.obs import (Counter, Histogram, MetricsRegistry, ObsConfig,
                       Tracer)
from repro.obs.export import (ANALYSIS_SCHEMA, BENCH_FILE_SCHEMA,
                              MC_SCHEMA, analysis_to_dict, bench_record,
                              mc_to_dict, validate, validate_bench_file)
from repro.experiments.common import BenchCollector


# -- tracing ----------------------------------------------------------------------

def test_span_nesting_and_timing_monotonicity():
    tracer = Tracer()
    with tracer.span("outer", key="v"):
        with tracer.span("inner-1"):
            pass
        with tracer.span("inner-2"):
            with tracer.span("leaf"):
                pass
    assert len(tracer.roots) == 1
    outer = tracer.roots[0]
    assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
    assert outer.children[1].children[0].name == "leaf"
    # every span is closed, timed monotonically, and contained in its
    # parent's interval
    for span in outer.walk():
        assert span.end is not None
        assert span.end >= span.start
    for child in outer.children:
        assert child.start >= outer.start
        assert child.end <= outer.end
    assert outer.duration >= sum(c.duration for c in outer.children)
    assert outer.attrs == {"key": "v"}


def test_span_render_and_dict():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    text = tracer.render()
    assert "a" in text and "  b" in text and "ms" in text
    (root,) = tracer.to_dict()
    assert root["name"] == "a"
    assert root["children"][0]["name"] == "b"
    assert root["duration_s"] >= root["children"][0]["duration_s"]


def test_disabled_tracer_collects_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("ghost"):
        pass
    assert tracer.roots == []
    assert tracer.render() == ""


def test_spans_from_worker_threads_become_roots():
    tracer = Tracer()

    def work(i):
        with tracer.span(f"worker-{i}"):
            pass

    with tracer.span("main"):
        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    names = {s.name for s in tracer.roots}
    assert "main" in names
    assert {f"worker-{i}" for i in range(4)} <= names
    # the main root must not have adopted other threads' spans
    (main,) = [s for s in tracer.roots if s.name == "main"]
    assert main.children == []


# -- metrics ----------------------------------------------------------------------

def test_counter_aggregation_under_threads():
    counter = Counter()

    def work():
        for _ in range(10_000):
            counter.inc()

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == 80_000


def test_registry_snapshot_and_histogram():
    registry = MetricsRegistry()
    registry.inc("c", 3)
    registry.set("g", 7)
    for v in (1.0, 2.0, 3.0):
        registry.observe("h", v)
    registry.merge_counts({"c": 2, "d": 1})
    snap = registry.snapshot()
    assert snap["c"] == 5 and snap["d"] == 1 and snap["g"] == 7
    assert snap["h"]["count"] == 3
    assert snap["h"]["min"] == 1.0 and snap["h"]["max"] == 3.0
    assert snap["h"]["mean"] == pytest.approx(2.0)
    assert "c: 5" in registry.render()


def test_histogram_empty_mean():
    assert Histogram().mean == 0.0
    assert Histogram().percentile(0.5) is None
    empty = Histogram().to_dict()
    assert empty["min"] is None and empty["max"] is None
    assert (empty["p50"], empty["p95"], empty["p99"]) \
        == (None, None, None)


def test_histogram_percentiles_single_value_exact():
    h = Histogram()
    h.observe(0.25)
    # one observation: min == max, every estimate clamps to it exactly
    assert h.percentile(0.5) == 0.25
    assert h.percentile(0.99) == 0.25
    snap = h.to_dict()
    assert snap["p50"] == snap["p95"] == snap["p99"] == 0.25


def test_histogram_top_bucket_straddle_clamps_to_max():
    h = Histogram()
    for v in (1.0, 1.05, 1.1):  # all share bucket [1.0, 2**0.25)
        h.observe(v)
    # the bucket's raw upper bound (~1.189) overstates every sample;
    # the clamp caps the estimate at the observed max instead
    for q in (0.5, 0.95, 0.99):
        assert h.percentile(q) == pytest.approx(1.1)


def test_histogram_percentiles_bucketed_estimates():
    h = Histogram()
    for v in range(1, 101):  # 1..100
        h.observe(float(v))
    # log-bucket estimates are upper bounds within ~19% of the truth
    p50, p95, p99 = (h.percentile(q) for q in (0.50, 0.95, 0.99))
    assert 50 <= p50 <= 50 * 1.19
    assert 95 <= p95 <= 95 * 1.19
    assert 99 <= p99 <= 99 * 1.19
    assert p50 <= p95 <= p99 <= h.max
    snap = h.to_dict()
    assert snap["p50"] == pytest.approx(p50)


def test_histogram_percentiles_clamped_and_nonpositive():
    h = Histogram()
    h.observe(0.0)     # lands in the underflow bucket
    h.observe(-1.0)
    h.observe(2.0)
    # underflow bucket: a tiny upper bound, clamped to observed range
    assert h.min <= h.percentile(0.01) <= 1e-8
    assert h.percentile(1.0) <= h.max


def test_bench_record_carries_percentiles():
    h = Histogram()
    for v in (0.01, 0.02, 0.04):
        h.observe(v)
    snap = h.to_dict()
    record = bench_record("x", 0.01, percentiles={
        k: snap[k] for k in ("p50", "p95", "p99")})
    assert validate([record], BENCH_FILE_SCHEMA) == []
    assert record["percentiles"]["p95"] >= record["percentiles"]["p50"]
    collector = BenchCollector()
    collector.add_analysis("analysis/x", 0.01, histogram=h)
    collector.add_analysis("analysis/empty", 0.01,
                           histogram=Histogram())
    assert "percentiles" in collector.analysis[0]
    assert "percentiles" not in collector.analysis[1]


# -- schema validation -------------------------------------------------------------

def test_validate_rejects_bad_bench_records():
    good = bench_record("x", 0.5, states=10, transitions=20)
    assert validate([good], BENCH_FILE_SCHEMA) == []
    assert validate([{"name": "x"}], BENCH_FILE_SCHEMA)  # missing keys
    bad_type = dict(good, states="ten")
    assert any("states" in e
               for e in validate([bad_type], BENCH_FILE_SCHEMA))
    assert validate({"not": "a list"}, BENCH_FILE_SCHEMA)


def test_bench_collector_roundtrip(tmp_path):
    collector = BenchCollector()
    collector.add_analysis("analysis/queue", 0.25)
    interp = Interp(corpus.NFQ_PRIME)
    result = Explorer(interp, [ThreadSpec.of(("UpdateTail",))],
                      mode="full").run()
    collector.add_mc("mc/queue", result)
    paths = collector.write(tmp_path)
    assert sorted(p.name for p in paths) == ["BENCH_analysis.json",
                                             "BENCH_mc.json"]
    for path in paths:
        records = validate_bench_file(path)
        assert records and records[0]["wall_s"] >= 0
    mc_records = validate_bench_file(tmp_path / "BENCH_mc.json")
    assert mc_records[0]["states"] == result.states
    (tmp_path / "broken.json").write_text('[{"name": 3}]')
    with pytest.raises(ValueError):
        validate_bench_file(tmp_path / "broken.json")


# -- result serialization round-trips ----------------------------------------------

def test_analysis_json_schema_roundtrip(nfq_prime_analysis):
    doc = json.loads(json.dumps(analysis_to_dict(nfq_prime_analysis)))
    assert validate(doc, ANALYSIS_SCHEMA) == []
    procs = {p["name"]: p for p in doc["procedures"]}
    assert procs["AddNode"]["atomic"]
    assert doc["all_atomic"] is False or doc["all_atomic"] is True
    # to_dict on the result object agrees with the module function
    assert nfq_prime_analysis.to_dict() == analysis_to_dict(
        nfq_prime_analysis)


def test_mc_json_schema_roundtrip():
    interp = Interp(corpus.NFQ_PRIME)
    specs = [ThreadSpec.of(("AddNode", 1)),
             ThreadSpec.of(("UpdateTail",))]
    result = Explorer(interp, specs, mode="full").run()
    doc = json.loads(json.dumps(mc_to_dict(result)))
    assert validate(doc, MC_SCHEMA) == []
    assert doc["states"] == result.states
    assert doc["states_per_s"] > 0
    assert doc["metrics"]["mc.cache_hits"] >= 0
    assert result.to_dict()["mode"] == "full"


def test_analysis_metrics_populated(nfq_prime_analysis):
    metrics = nfq_prime_analysis.metrics
    assert metrics["analysis.variants"] == 5
    assert metrics["analysis.sites"] > 0
    assert metrics["analysis.exclusions.thm5.3"] > 0
    assert metrics["analysis.movers.B"] > 0


def test_explorer_metrics_and_ample_ratio():
    interp = Interp(corpus.NFQ_PRIME)
    specs = [ThreadSpec.of(("AddNode", 1)),
             ThreadSpec.of(("DeqP",))]
    full = Explorer(interp, specs, mode="full").run()
    por = Explorer(interp, specs, mode="por").run()
    assert full.metrics["mc.states"] == full.states
    assert full.metrics["mc.max_depth"] > 1
    assert por.metrics["mc.ample_reduced"] > 0
    assert 0 < por.metrics["mc.ample_reduction_ratio"] <= 1
    assert por.metrics["mc.safety_cache_hits"] \
        + por.metrics["mc.safety_cache_misses"] > 0


def test_explorer_tracing():
    tracer = Tracer()
    interp = Interp(corpus.NFQ_PRIME)
    result = Explorer(interp, [ThreadSpec.of(("UpdateTail",))],
                      mode="full", tracer=tracer).run()
    assert result.states > 0
    (root,) = tracer.roots
    assert root.name == "mc:run"
    assert [c.name for c in root.children] == ["mc:init", "mc:dfs"]


def test_analysis_tracing_covers_pipeline_phases():
    tracer = Tracer()
    result = analyze_program(corpus.NFQ_PRIME, tracer=tracer)
    assert result.verdicts
    names = {s.name for root in tracer.roots for s in root.walk()}
    for phase in ("analysis:run", "analysis:variants",
                  "analysis:escape-uniqueness-purity",
                  "analysis:lockset-windows", "analysis:collect-sites",
                  "analysis:classify", "analysis:propagate-verdicts"):
        assert phase in names, phase
    assert result.trace  # span tree stored on the result


# -- provenance golden test (§6.1 queue, Thm 5.3) ----------------------------------

def _addnode_report(result):
    for verdict in result.verdicts.values():
        for report in verdict.variants:
            if report.variant.name == "AddNode":
                return report
    raise AssertionError("AddNode variant not found")


def test_explain_names_thm53_on_matching_ll_lines(nfq_prime_analysis):
    report = _addnode_report(nfq_prime_analysis)
    ll_lines = [line for line in variant_lines(report, "a")
                if "LL(" in line.text and "local" in line.text]
    assert ll_lines, "expected LL binding lines in AddNode"
    for line in ll_lines:
        chain = line_provenance(report, line)
        assert any(j.theorem == "5.3" and j.rule.startswith("matching")
                   for j in chain), line.text
    # rendered --explain output names the theorem on those lines
    text = render_figure(nfq_prime_analysis, explain=True)
    assert "matching LL" in text and "Thm 5.3" in text


def test_explain_names_thm54_on_cas_counter():
    result = analyze_program(corpus.CAS_COUNTER)
    justifications = [
        j
        for verdict in result.verdicts.values()
        for report in verdict.variants
        for line in variant_lines(report, "a")
        for j in line_provenance(report, line)]
    assert any(j.theorem == "5.4" and j.rule == "successful-CAS"
               for j in justifications)
    assert any(j.theorem == "5.4" and j.rule == "matching-CAS-read"
               for j in justifications)
    text = render_figure(result, explain=True)
    assert "Thm 5.4" in text


def test_step4_aggregates_tally_thm55(nfq_prime_analysis):
    # the §5.5 loop-condition argument contributes marks to the
    # adjacency-exclusion case splits on NFQ' (e.g. UpdateTail's
    # `local next = t.Next in` read)
    counts: dict = {}
    for verdict in nfq_prime_analysis.verdicts.values():
        for report in verdict.variants:
            for line in variant_lines(report, "a"):
                for j in line_provenance(report, line):
                    for theorem, n in j.counts.items():
                        counts[theorem] = counts.get(theorem, 0) + n
    assert counts.get("5.5", 0) > 0
    assert counts.get("5.3", 0) > 0
    text = render_figure(nfq_prime_analysis, explain=True)
    assert "Thm 5.5 x" in text


def test_provenance_rendering_shapes(nfq_prime_analysis):
    report = _addnode_report(nfq_prime_analysis)
    for line in variant_lines(report, "a"):
        for j in line_provenance(report, line):
            rendered = j.render()
            assert rendered  # never empty
            d = j.to_dict()
            assert d["step"] and d["rule"]
            if j.theorem is not None:
                assert f"Thm {j.theorem}" in rendered


# -- CLI surfacing ------------------------------------------------------------------

@pytest.fixture
def queue_file(tmp_path):
    path = tmp_path / "queue.synl"
    path.write_text(corpus.NFQ_PRIME)
    return str(path)


def test_cli_analyze_json(queue_file, capsys):
    assert cli.main(["analyze", "--json", queue_file]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert validate(doc, ANALYSIS_SCHEMA) == []
    assert {p["name"] for p in doc["procedures"]} == {
        "AddNode", "UpdateTail", "DeqP"}


def test_cli_analyze_explain_and_metrics(queue_file, capsys):
    assert cli.main(["analyze", "--explain", "--metrics",
                     queue_file]) == 0
    out = capsys.readouterr().out
    assert "Thm 5.3" in out
    assert "-- metrics --" in out
    assert "analysis.variants: 5" in out


def test_cli_analyze_trace_flag_and_env(queue_file, capsys,
                                        monkeypatch):
    assert cli.main(["analyze", "--trace", queue_file]) == 0
    assert "analysis:classify" in capsys.readouterr().out
    monkeypatch.setenv("REPRO_TRACE", "1")
    assert cli.main(["analyze", queue_file]) == 0
    assert "analysis:classify" in capsys.readouterr().out
    monkeypatch.setenv("REPRO_TRACE", "0")
    assert cli.main(["analyze", queue_file]) == 0
    assert "analysis:classify" not in capsys.readouterr().out


def test_cli_blocks_json(queue_file, capsys):
    assert cli.main(["blocks", "--json", queue_file]) == 0
    doc = json.loads(capsys.readouterr().out)
    names = {p["name"] for p in doc["procedures"]}
    assert "AddNode" in names
    first = doc["procedures"][0]["partitions"][0]
    assert first["n_blocks"] >= 1 and first["blocks"]


def test_cli_mc_metrics_and_json(queue_file, capsys):
    argv = ["mc", queue_file, "UpdateTail()", "--metrics"]
    assert cli.main(argv) == 0
    assert "mc.states_per_s" in capsys.readouterr().out
    assert cli.main(["mc", "--json", queue_file, "UpdateTail()"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert validate(doc, MC_SCHEMA) == []


def test_cli_mc_capped_exits_nonzero(queue_file, capsys):
    argv = ["mc", queue_file, "AddNode(1)", "AddNode(2)",
            "--max-states", "5"]
    code = cli.main(argv)
    captured = capsys.readouterr()
    assert code == cli.EXIT_CAPPED
    assert "CAPPED" in captured.out
    assert "state cap reached" in captured.err
    assert "--max-states" in captured.err


def test_cli_run_echoes_seed_on_success(queue_file, capsys):
    assert cli.main(["run", queue_file, "UpdateTail()",
                     "--seed", "11"]) == 0
    assert "(seed=11)" in capsys.readouterr().out


def test_cli_run_assertion_violation_exits_nonzero(tmp_path, capsys):
    path = tmp_path / "bad.synl"
    path.write_text("""
global X;
init { X = 0; }
proc P() {
  X = 1;
  assert(X == 2);
}
""")
    assert cli.main(["run", str(path), "P()", "--seed", "5"]) == 1
    out = capsys.readouterr().out
    assert "assertion violation" in out
    assert "(seed=5)" in out


# -- config -------------------------------------------------------------------------

def test_obs_config_env_parsing():
    cfg = ObsConfig.from_env({"REPRO_TRACE": "1"})
    assert cfg.trace and not cfg.metrics
    assert not ObsConfig.from_env({"REPRO_TRACE": "off"}).trace
    assert not ObsConfig.from_env({}).metrics
    merged = ObsConfig.from_env({"REPRO_METRICS": "yes"}).with_flags(
        trace=True)
    assert merged.trace and merged.metrics


# -- the centralized schema-version registry ---------------------------------------

def test_schema_registry_matches_live_constants():
    from repro.obs import schemas

    registry = schemas.registry()
    assert set(registry) == {"events", "bench", "graph", "profile",
                             "manifest", "lint", "cex", "heatmap",
                             "summary", "perfdiff", "fleet"}
    assert all(isinstance(v, int) and v >= 1
               for v in registry.values())
    # every emitter imports its constant from the registry, so the
    # live tree must report zero drift
    assert schemas.check_registry() == []


def test_schema_registry_backs_ledger_manifest():
    from repro.obs import ledger, schemas

    assert ledger.schema_versions() == schemas.registry()
