"""Action extraction tests (§3.3 classification inputs)."""

from repro.analysis.actions import (Target, location_target, node_actions)
from repro.cfg import NodeKind, build_cfg
from repro.synl.resolve import load_program


def _cfg(body, prelude="global G; class Node { Value; Next; }"):
    prog = load_program(f"{prelude} proc P() {{ {body} }}")
    return build_cfg(prog.proc("P"))


def _node(cfg, kind):
    return next(n for n in cfg.nodes if n.kind is kind)


def test_global_write_action():
    cfg = _cfg("G = 1;")
    (a,) = node_actions(_node(cfg, NodeKind.STMT))
    assert a.op == "write" and a.target == Target("global", name="G")


def test_assignment_reads_value_before_write():
    cfg = _cfg("G = G + 1;")
    actions = node_actions(_node(cfg, NodeKind.STMT))
    assert [a.op for a in actions] == ["read", "write"]


def test_ll_action_via():
    cfg = _cfg("local t = LL(G) in skip;")
    actions = node_actions(_node(cfg, NodeKind.BIND))
    assert actions[0].via == "LL" and actions[0].op == "read"
    assert actions[1].op == "write" and actions[1].target.kind == "var"


def test_sc_evaluates_value_then_writes():
    cfg = _cfg("local t = LL(G) in { SC(G, t + 1); }")
    stmt = _node(cfg, NodeKind.STMT)
    actions = node_actions(stmt)
    assert actions[-1].via == "SC" and actions[-1].op == "write"
    assert actions[0].op == "read" and actions[0].target.kind == "var"


def test_cas_action_order():
    cfg = _cfg("local c = G in { CAS(G, c, c + 1); }")
    stmt = _node(cfg, NodeKind.STMT)
    ops = [(a.op, a.via) for a in node_actions(stmt)]
    assert ops[-1] == ("write", "CAS")
    assert all(op == "read" for op, _ in ops[:-1])


def test_field_access_produces_base_read_and_field_read():
    cfg = _cfg("local n = new Node in { G = n.Value; }")
    stmt = _node(cfg, NodeKind.STMT)
    actions = node_actions(stmt)
    kinds = [(a.op, a.target.kind if a.target else None) for a in actions]
    assert ("read", "var") in kinds       # reading n
    assert ("read", "field") in kinds     # reading n.Value
    assert kinds[-1] == ("write", "global")


def test_elem_target_through_field():
    prog = load_program("""
        threadlocal p;
        threadinit { p = new Obj; }
        class Obj { data; }
        proc P(i) { p.data[i] = 0; }
    """)
    cfg = build_cfg(prog.proc("P"))
    stmt = _node(cfg, NodeKind.STMT)
    write = node_actions(stmt)[-1]
    assert write.target.kind == "elem" and write.target.field == "data"


def test_elem_of_global_array_has_no_binding():
    prog = load_program("global Arr; proc P(i) { Arr[i] = 1; }")
    cfg = build_cfg(prog.proc("P"))
    write = node_actions(_node(cfg, NodeKind.STMT))[-1]
    assert write.target.kind == "elem"
    assert write.target.binding is None and write.target.name == "Arr"


def test_alloc_action():
    cfg = _cfg("local n = new Node in skip;")
    actions = node_actions(_node(cfg, NodeKind.BIND))
    assert actions[0].op == "alloc"


def test_branch_actions_are_condition_reads():
    cfg = _cfg("if (G == 1) { skip; }")
    actions = node_actions(_node(cfg, NodeKind.BRANCH))
    assert len(actions) == 1 and actions[0].op == "read"


def test_acquire_release_actions():
    cfg = _cfg("synchronized (G) { skip; }")
    acq = node_actions(_node(cfg, NodeKind.ACQUIRE))
    rel = node_actions(_node(cfg, NodeKind.RELEASE))
    assert acq[-1].op == "acquire"
    assert rel[-1].op == "release"


def test_return_value_reads():
    cfg = _cfg("return G;")
    actions = node_actions(_node(cfg, NodeKind.RETURN))
    assert [a.op for a in actions] == ["read"]


def test_control_nodes_have_no_actions():
    cfg = _cfg("loop { break; }")
    assert node_actions(_node(cfg, NodeKind.LOOP_HEAD)) == []
    assert node_actions(_node(cfg, NodeKind.BREAK)) == []


def test_threadlocal_var_target_kind():
    prog = load_program("threadlocal t; proc P() { t = 1; }")
    cfg = build_cfg(prog.proc("P"))
    write = node_actions(_node(cfg, NodeKind.STMT))[-1]
    assert write.target.kind == "var"


def test_location_target_str_rendering():
    prog = load_program("global G; proc P() { G = 1; }")
    var = next(n for n in prog.walk()
               if getattr(n, "name", None) == "G"
               and type(n).__name__ == "Var")
    assert str(location_target(var)) == "G"
