"""Class inference, alias analysis (§5.4 step 4) and locksets (Thm 5.1)."""

from repro.analysis.actions import Target, node_actions
from repro.analysis.alias import AliasAnalysis
from repro.analysis.locks import common_lock, lockset_analysis
from repro.analysis.typing import infer_classes
from repro.cfg import NodeKind, build_cfg
from repro.synl import ast as A
from repro.synl.resolve import load_program

QUEUEISH = """
class Node { Value; Next; }
class Other { Fd; }
global Head;
global Tail;
init {
  local d = new Node in { Head = d; Tail = d; }
}
proc P(v) {
  local t = LL(Tail) in
  local o = new Other in
  local next = t.Next in {
    SC(t.Next, next);
    o.Fd = v;
  }
}
"""


def _bindings(prog):
    return {d.name: d.binding for d in prog.walk()
            if isinstance(d, A.LocalDecl)}


def test_classes_flow_through_globals_and_ll():
    prog = load_program(QUEUEISH)
    env = infer_classes(prog)
    b = _bindings(prog)
    assert env.of_global("Tail") == frozenset({"Node"})
    assert env.of_binding(b["t"]) == frozenset({"Node"})
    assert env.of_binding(b["o"]) == frozenset({"Other"})


def test_classes_flow_through_fields_and_sc():
    prog = load_program(QUEUEISH)
    env = infer_classes(prog)
    b = _bindings(prog)
    # t.Next receives Node refs via SC(t.Next, next) ... transitively
    # nothing puts Nodes there in this program except the SC of `next`,
    # whose own class comes from t.Next — the fixpoint stays empty.
    assert env.of_binding(b["next"]) == frozenset()


def test_field_flow_from_assignments():
    prog = load_program("""
        class Node { Next; }
        global G;
        proc P() {
          local a = new Node in
          local b = new Node in {
            a.Next = b;
            local c = a.Next in { G = c; }
          }
        }
    """)
    env = infer_classes(prog)
    b = _bindings(prog)
    assert env.of_binding(b["c"]) == frozenset({"Node"})
    assert env.of_global("G") == frozenset({"Node"})


def test_array_allocation_sites_distinct():
    prog = load_program("""
        global A; global B;
        init { A = new int[4]; B = new int[4]; }
        proc P() { skip; }
    """)
    env = infer_classes(prog)
    assert env.of_global("A") != env.of_global("B")
    assert len(env.of_global("A")) == 1


# -- alias analysis ---------------------------------------------------------------

def _alias(prog):
    return AliasAnalysis(prog, infer_classes(prog))


def test_globals_alias_by_name_only():
    prog = load_program(QUEUEISH)
    alias = _alias(prog)
    head = Target("global", name="Head")
    tail = Target("global", name="Tail")
    assert alias.may_alias(head, head)
    assert not alias.may_alias(head, tail)
    assert alias.must_alias(head, head)


def test_fields_alias_only_with_same_field_and_class():
    prog = load_program(QUEUEISH)
    alias = _alias(prog)
    b = _bindings(prog)
    t_next = Target("field", name="t", binding=b["t"], field="Next")
    o_fd = Target("field", name="o", binding=b["o"], field="Fd")
    assert not alias.may_alias(t_next, o_fd)   # different fields
    o_next = Target("field", name="o", binding=b["o"], field="Next")
    assert not alias.may_alias(t_next, o_next)  # disjoint classes
    t2_next = Target("field", name="t2", binding=b["next"], field="Next")
    # `next` has unknown classes: conservative may-alias
    assert alias.may_alias(t_next, t2_next)


def test_global_never_aliases_heap_cell():
    prog = load_program(QUEUEISH)
    alias = _alias(prog)
    b = _bindings(prog)
    head = Target("global", name="Head")
    t_next = Target("field", name="t", binding=b["t"], field="Next")
    assert not alias.may_alias(head, t_next)


def test_must_alias_same_binding_same_field():
    prog = load_program(QUEUEISH)
    alias = _alias(prog)
    b = _bindings(prog)
    x = Target("field", name="t", binding=b["t"], field="Next")
    y = Target("field", name="t", binding=b["t"], field="Next")
    assert alias.must_alias(x, y)


# -- locksets ----------------------------------------------------------------------

LOCKED = """
class LockObj { unused; }
global L1; global L2; global V;
init { L1 = new LockObj; L2 = new LockObj; V = 0; }
proc P() {
  synchronized (L1) {
    V = 1;
    synchronized (L2) { V = 2; }
  }
  V = 3;
}
"""


def test_lockset_tracks_nesting():
    prog = load_program(LOCKED)
    cfg = build_cfg(prog.proc("P"))
    locks = lockset_analysis(cfg)
    writes = [n for n in cfg.nodes if n.kind is NodeKind.STMT
              and isinstance(n.stmt, A.Assign)]
    v1, v2, v3 = writes
    assert {t.name for t in locks.held_at(v1)} == {"L1"}
    assert {t.name for t in locks.held_at(v2)} == {"L1", "L2"}
    assert locks.held_at(v3) == frozenset()


def test_common_lock_requires_shared_name():
    prog = load_program(LOCKED)
    alias = _alias(prog)
    l1 = frozenset({Target("global", name="L1")})
    l2 = frozenset({Target("global", name="L2")})
    both = l1 | l2
    assert common_lock(alias, l1, both)
    assert not common_lock(alias, l1, l2)
    assert not common_lock(alias, l1, frozenset())
