"""Content-addressed summary store (repro.analysis.summaries.store):
round-trips, the schema-version refusal guard, gc, and stats."""

from __future__ import annotations

import json

from repro.analysis.summaries.store import SCHEMA_VERSION, SummaryStore
from repro.obs import schemas


def test_schema_version_registered():
    assert SCHEMA_VERSION == schemas.SUMMARY
    assert schemas.registry()["summary"] == SCHEMA_VERSION
    assert not schemas.check_registry()


def test_put_get_roundtrip(tmp_path):
    store = SummaryStore(tmp_path / "store")
    store.put("proc", "a" * 16, "Down", {"slice": {"atomic": True}})
    record = store.get("proc", "a" * 16)
    assert record["v"] == SCHEMA_VERSION
    assert record["kind"] == "proc"
    assert record["name"] == "Down"
    assert record["slice"] == {"atomic": True}
    assert store.get("proc", "b" * 16) is None
    assert store.get("program", "a" * 16) is None


def test_refuses_schema_version_mismatch(tmp_path):
    store = SummaryStore(tmp_path / "store")
    path = store.put("proc", "c" * 16, "Up", {"slice": {}})
    stale = json.loads(path.read_text())
    stale["v"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(stale))
    assert store.get("proc", "c" * 16) is None
    assert store.stats()["schema_refused"] == 1


def test_refuses_corrupt_record(tmp_path):
    store = SummaryStore(tmp_path / "store")
    path = store.put("program", "d" * 16, "prog", {"doc": {}})
    path.write_text("{not json")
    assert store.get("program", "d" * 16) is None
    assert store.stats()["corrupt"] >= 1


def test_key_prefix_collision_checks_full_key(tmp_path):
    store = SummaryStore(tmp_path / "store")
    store.put("proc", "e" * 12 + "1111", "P", {"slice": {}})
    # same 12-char prefix, different full key -> miss, not a false hit
    assert store.get("proc", "e" * 12 + "2222") is None


def test_prefix_sharing_records_do_not_evict_each_other(tmp_path):
    # Filenames carry the FULL key: two records whose keys share a
    # long prefix (and the same name) must coexist — put() of one must
    # not overwrite the other
    store = SummaryStore(tmp_path / "store")
    key_a = "e" * 12 + "1111"
    key_b = "e" * 12 + "2222"
    store.put("proc", key_a, "P", {"slice": {"atomic": True}})
    store.put("proc", key_b, "P", {"slice": {"atomic": False}})
    assert store.get("proc", key_a)["slice"] == {"atomic": True}
    assert store.get("proc", key_b)["slice"] == {"atomic": False}
    assert store.stats()["procs"] == 2


def test_put_leaves_no_tmp_litter(tmp_path):
    store = SummaryStore(tmp_path / "store")
    store.put("proc", "a" * 16, "P", {"slice": {}})
    leftovers = [p for p in (tmp_path / "store" / "procs").iterdir()
                 if p.suffix != ".json"]
    assert leftovers == []


def test_known_proc_names_and_entries(tmp_path):
    store = SummaryStore(tmp_path / "store")
    store.put("proc", "f" * 16, "Down", {"slice": {}})
    store.put("proc", "0" * 16, "Up", {"slice": {}})
    store.put("program", "1" * 16, "prog", {"doc": {}})
    assert store.known_proc_names() == {"Down", "Up"}
    kinds = sorted(e["kind"] for e in store.entries())
    assert kinds == ["proc", "proc", "program"]


def test_gc_keeps_most_recent(tmp_path):
    import os

    store = SummaryStore(tmp_path / "store")
    for i in range(5):
        path = store.put("proc", f"{i}{'a' * 15}", f"P{i}",
                         {"slice": {}})
        os.utime(path, (1000 + i, 1000 + i))
    removed = store.gc(keep=2)
    assert len(removed) == 3
    names = {e["name"] for e in store.entries("proc")}
    assert names == {"P3", "P4"}


def test_stats_shape(tmp_path):
    store = SummaryStore(tmp_path / "store")
    store.put("proc", "a" * 16, "P", {"slice": {}})
    stats = store.stats()
    assert stats["kind"] == "summary-stats"
    assert stats["procs"] == 1
    assert stats["programs"] == 0
    assert stats["bytes"] > 0
