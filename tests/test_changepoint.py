"""Step detection over the perf trajectory: an injected level shift
must be flagged at the right entry, while IQR-level jitter, flat
(deterministic-counter) series, and short series stay silent — the
detector's whole value is a zero false-positive rate on noise."""

from __future__ import annotations

from repro.obs.changepoint import (MIN_SEG, detect_history,
                                   detect_steps, render_steps,
                                   robust_scale)

#: a realistic jittery level around 10ms (diffs have nonzero MAD)
_BASE = [0.0100, 0.0103, 0.0099, 0.0102, 0.0101, 0.0098]
#: same jitter pattern one regime up (~+50%)
_UP = [0.0150, 0.0153, 0.0149, 0.0152, 0.0151, 0.0148]


# -- detect_steps ------------------------------------------------------------------

def test_injected_step_is_flagged_at_the_right_index():
    (step,) = detect_steps(_BASE + _UP)
    assert step["index"] == len(_BASE)      # first point of new regime
    assert step["delta"] > 0
    assert 40 < step["delta_pct"] < 60
    assert step["before_mean"] < step["after_mean"]


def test_downward_step_is_flagged_too():
    (step,) = detect_steps(_UP + _BASE)
    assert step["index"] == len(_UP)
    assert step["delta"] < 0
    assert step["delta_pct"] < -25


def test_noise_only_series_is_silent():
    # jitter at the same amplitude as the series' own IQR
    assert detect_steps(_BASE + _BASE) == []


def test_flat_series_is_silent():
    # deterministic counters repeat exactly: scale falls back to an
    # epsilon, but a zero mean shift must never flag
    assert detect_steps([5.0] * 12) == []


def test_short_series_is_silent():
    # fewer than 2 * MIN_SEG points cannot host a split
    values = _BASE[:MIN_SEG] + _UP[:MIN_SEG - 1]
    assert detect_steps(values) == []


def test_noise_floor_suppresses_sub_floor_steps():
    low = [1.000, 1.001, 0.999, 1.000, 1.001, 0.999]
    high = [1.2 + v - 1.0 for v in low]       # +0.2 absolute shift
    assert detect_steps(low + high) != []
    assert detect_steps(low + high, noise_floor=0.5) == []


def test_two_steps_both_found():
    series = _BASE + _UP + [v * 2 for v in _UP]
    steps = detect_steps(series)
    assert [s["index"] for s in steps] == [len(_BASE),
                                           len(_BASE) + len(_UP)]


def test_robust_scale_ignores_a_single_step():
    # the step contributes one outlier difference; the MAD of diffs
    # must reflect the jitter, not the jump
    scale = robust_scale(_BASE + _UP)
    assert 0 < scale < 0.002


# -- detect_history ----------------------------------------------------------------

def _history(walls, iqr=0.0003, name="mc/case/por"):
    return [{"at": float(i + 1), "repeats": 5,
             "env": {"git_rev": f"{i:x}" * 16, "python": "3.11",
                     "platform": "linux", "cpu_count": 1},
             "metrics": {name: {"wall_s": w,
                                "states_per_s": 64 / w,
                                "iqr": iqr}}}
            for i, w in enumerate(walls)]


def test_history_step_annotated_with_git_rev():
    (step,) = detect_history(_history(_BASE + _UP))
    assert step["name"] == "mc/case/por"
    assert step["metric"] == "wall_s"
    assert step["entry"] == len(_BASE)
    assert step["at"] == float(len(_BASE) + 1)
    # the rev of the entry where the new regime starts
    assert step["git_rev"] == f"{len(_BASE):x}" * 16


def test_history_recorded_iqr_is_the_noise_floor():
    # a shift smaller than the recorded repeat IQR must not flag
    walls = _BASE + [v + 0.002 for v in _BASE]
    assert detect_history(_history(walls, iqr=0.004)) == []
    assert detect_history(_history(walls, iqr=0.0001)) != []


def test_history_missing_metric_entries_are_skipped():
    history = _history(_BASE + _UP)
    history.insert(3, {"at": 3.5, "env": {}, "metrics": {}})
    (step,) = detect_history(history)
    assert step["name"] == "mc/case/por"


# -- render_steps ------------------------------------------------------------------

def test_render_steps_names_case_entry_and_rev():
    steps = detect_history(_history(_BASE + _UP))
    text = render_steps(steps, "wall_s")
    assert "[STEP] mc/case/por wall_s:" in text
    assert f"at entry {len(_BASE)}" in text
    assert "git 666666666666" in text


def test_render_steps_empty_is_a_quiet_one_liner():
    assert render_steps([], "wall_s") == \
        "no changepoints detected (wall_s)"
