"""Atomic-block annotation of Michael's lock-free allocator (§6.4).

When whole procedures are not atomic, the analysis still partitions the
code into maximal atomic blocks — each CAS retry window plus the local
glue around it.  The paper's headline: 74 lines of malloc pseudocode,
15 atomic blocks.  This prints every block of every routine.

Run:  python examples/annotate_allocator.py
"""

from repro.analysis import analyze_program
from repro.analysis.blocks import partition_procedure
from repro.corpus import ALLOCATOR
from repro.experiments.section64 import count_routine_lines


def main() -> None:
    result = analyze_program(ALLOCATOR)
    total = 0
    for name in result.verdicts:
        partitions = partition_procedure(result, name)
        best = max(partitions, key=lambda p: p.n_blocks)
        total += best.n_blocks
        print(best.render())
        print()
    print(f"routines: {len(result.verdicts)}   "
          f"pseudocode lines: {count_routine_lines()}   "
          f"atomic blocks (longest paths): {total}")
    print("paper: 74 lines of pseudo-code -> 15 atomic blocks")


if __name__ == "__main__":
    main()
