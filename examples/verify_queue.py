"""End-to-end verification of the non-blocking FIFO queue (§6.1).

The paper's two-step recipe for linearizability:

1. the static analysis shows every procedure of NFQ' atomic
   (Figure 3);
2. the implementation, executed sequentially, satisfies the sequential
   queue specification.

Then each concurrent execution is equivalent to a serial one that
satisfies the spec.  This script runs both steps, cross-checks with the
model checker (with and without the atomic-block reduction — the
Table 2 effect) and with the linearizability checker on random
schedules, and shows the incorrect AddNode being caught.

Run:  python examples/verify_queue.py
"""

from repro.analysis import analyze_program
from repro.corpus import NFQ_PRIME, NFQ_PRIME_BUGGY
from repro.interp import Interp, ThreadSpec, run_random, run_round_robin
from repro.lin import FifoQueueSpec, linearizable, world_history
from repro.mc import Explorer, QueueContents, QueueShape

SPECS = [
    ThreadSpec.of(("AddNode", 1)),
    ThreadSpec.of(("AddNode", 2)),
    ThreadSpec.of(("DeqP",), ("DeqP",)),
    ThreadSpec.of(("UpdateTail",), repeat=True),
]


def step1_static_analysis() -> None:
    print("== step 1: static atomicity analysis (§5.4) ==")
    result = analyze_program(NFQ_PRIME)
    for name in ("AddNode", "UpdateTail", "DeqP"):
        print(f"  {name}: "
              f"{'ATOMIC' if result.is_atomic(name) else 'NOT atomic'}")
    assert result.all_atomic


def step2_sequential_spec() -> None:
    print("\n== step 2: sequential runs satisfy the FIFO spec ==")
    interp = Interp(NFQ_PRIME)
    world = interp.make_world([ThreadSpec.of(
        ("AddNode", 1), ("AddNode", 2), ("DeqP",), ("DeqP",), ("DeqP",))])
    run_round_robin(interp, world)
    ok = linearizable(world_history(world), FifoQueueSpec()).ok
    print(f"  sequential history legal: {ok}")
    assert ok


def model_check() -> None:
    print("\n== model checking (the Table 2 effect) ==")
    interp = Interp(NFQ_PRIME)
    props = [QueueShape(), QueueContents()]
    full = Explorer(interp, SPECS, mode="full", properties=props,
                    max_states=400_000).run()
    atomic = Explorer(interp, SPECS, mode="atomic",
                      properties=props).run()
    print(f"  full interleaving : {full}")
    print(f"  atomic reduction  : {atomic}")
    print(f"  state reduction   : {full.states / atomic.states:.0f}x")
    assert full.violation is None and atomic.violation is None


def concurrent_linearizability() -> None:
    print("\n== linearizability of random concurrent schedules ==")
    interp = Interp(NFQ_PRIME)
    for seed in range(5):
        world = interp.make_world(SPECS)
        run_random(interp, world, seed=seed, max_steps=20_000)
        result = linearizable(world_history(world), FifoQueueSpec())
        print(f"  seed {seed}: linearizable={result.ok} "
              f"({len(result.witness)} ops)")
        assert result.ok


def catch_the_bug() -> None:
    print("\n== the incorrect AddNode (Table 2, row 3) ==")
    interp = Interp(NFQ_PRIME_BUGGY)
    result = Explorer(interp, SPECS, mode="atomic",
                      properties=[QueueShape(), QueueContents()]).run()
    print(f"  {result}")
    print(f"  violation: {result.violation}")
    assert result.violation is not None


if __name__ == "__main__":
    step1_static_analysis()
    step2_sequential_spec()
    model_check()
    concurrent_linearizability()
    catch_the_bug()
    print("\nall checks passed")
