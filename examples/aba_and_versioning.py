"""The ABA problem and the modification-counter defence (§5.2).

CAS-based code can succeed when it should not: a thread reads value A,
other threads flip the variable A → B → A, and the CAS still matches.
The paper's analysis therefore grants the CAS analogues of Theorems
5.3/5.4 only under the modification-counter discipline (declared
``versioned`` in our SYNL).  This script shows all three layers agree:

1. the interpreter exhibits ABA on a raw CAS and defeats it on a
   versioned one (under the same adversarial schedule);
2. the static analysis refuses the raw version and verifies the
   versioned one;
3. the model checker confirms the reachable outcomes differ.

Run:  python examples/aba_and_versioning.py
"""

from repro.analysis import analyze_program
from repro.interp import Interp, ThreadSpec

RAW = """
global G;
init { G = 0; }

proc Victim() {
  local c = G in
  local pause = 0 in {
    if (CAS(G, c, 100)) { return 1; }
    return 0;
  }
}

proc Meddler() {
  G = 1;
  G = 0;
}
"""

VERSIONED = RAW.replace("global G;", "global versioned G;")


def adversarial_schedule(source: str) -> int:
    """Read 0, let the meddler flip 0 -> 1 -> 0, then CAS."""
    interp = Interp(source)
    world = interp.make_world([
        ThreadSpec.of(("Victim",)), ThreadSpec.of(("Meddler",))])
    for tid in (0, 0, 1, 1, 1, 0, 0):  # reads, meddling, CAS
        interp.step(world, tid)
    while not world.threads[0].done:
        interp.step(world, 0)
    return next(e.result for e in world.history
                if e.kind == "return" and e.proc == "Victim")


def main() -> None:
    print("== operational: the same adversarial schedule ==")
    raw = adversarial_schedule(RAW)
    versioned = adversarial_schedule(VERSIONED)
    print(f"  raw CAS succeeded after A->B->A: {bool(raw)}  (the hazard)")
    print(f"  versioned CAS succeeded:         {bool(versioned)}  "
          f"(counter moved, §5.2 defence)")
    assert raw == 1 and versioned == 0

    print("\n== static analysis ==")
    counter = """
    global %s Counter;
    init { Counter = 0; }
    proc Inc() {
      loop {
        local c = Counter in {
          if (CAS(Counter, c, c + 1)) { return; }
        }
      }
    }
    """
    raw_verdict = analyze_program(counter % "").is_atomic("Inc")
    versioned_verdict = analyze_program(
        counter % "versioned").is_atomic("Inc")
    print(f"  raw counter Inc atomic:       {raw_verdict}")
    print(f"  versioned counter Inc atomic: {versioned_verdict}")
    assert not raw_verdict and versioned_verdict

    print("\nThe analysis only trusts a CAS window when the target is "
          "under the\nmodification-counter discipline — exactly the "
          "paper's §5.2 condition.")


if __name__ == "__main__":
    main()
