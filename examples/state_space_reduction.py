"""State-space reduction from inferred atomicity (§6.3).

Explores Gao & Hesselink's large-object algorithm under the four
configurations of the paper's SPIN experiment: full interleaving, a
classic partial-order reduction, atomic procedure bodies (the reduction
the paper's analysis licenses), and both.  The ordering
no-opt ≫ POR ≫ atomic ≥ both is the paper's result.

Run:  python examples/state_space_reduction.py        (2 threads, fast)
      python examples/state_space_reduction.py 3      (paper's driver)
"""

import sys

from repro.corpus import GH_PROGRAM1
from repro.experiments.section63 import commutes
from repro.interp import Interp, ThreadSpec
from repro.mc import Explorer


def main(n_threads: int = 2) -> None:
    interp = Interp(GH_PROGRAM1)
    specs = [ThreadSpec.of(("Apply", g + 1)) for g in range(n_threads)]
    print(f"Gao-Hesselink large objects, {n_threads} threads, "
          f"one field group each\n")
    results = {}
    for mode, kwargs in (
            ("full", {}),
            ("por", {}),
            ("atomic", {}),
            ("both", {"commutes": commutes})):
        result = Explorer(interp, specs, mode=mode,
                          max_states=2_000_000, **kwargs).run()
        results[mode] = result
        print(f"  {mode:<7} {result.states:>9} states   "
              f"{result.elapsed:7.2f}s")
    print(f"\n  atomicity beats the classic POR by "
          f"{results['por'].states / results['atomic'].states:.0f}x "
          f"(paper: 452,043 vs 69,215 under SPIN)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
