"""Quickstart: write a small non-blocking algorithm in SYNL, run the
atomicity analysis, and read the per-line report.

Run:  python examples/quickstart.py
"""

from repro.analysis import analyze_program, render_figure

# A counting semaphore implemented with LL/SC — the paper's §4 example.
# `Down` spins until it can atomically decrement a positive counter.
SOURCE = """
global Sem;

init { Sem = 2; }

proc Down() {
  loop {
    local tmp = LL(Sem) in {
      if (tmp > 0) {
        if (SC(Sem, tmp - 1)) { return; }
      }
    }
  }
}

proc Up() {
  loop {
    local tmp = LL(Sem) in {
      if (SC(Sem, tmp + 1)) { return; }
    }
  }
}
"""


def main() -> None:
    result = analyze_program(SOURCE)

    print("Exceptional variants and per-line atomicity types")
    print("(B both-mover, R right-mover, L left-mover, A atomic):\n")
    print(render_figure(result))

    print("\nVerdicts (Theorem 5.2):")
    for name, verdict in result.verdicts.items():
        print(f"  {name}: {'ATOMIC' if verdict.atomic else 'not shown atomic'}")

    assert result.all_atomic, "the semaphore operations should verify"


if __name__ == "__main__":
    main()
